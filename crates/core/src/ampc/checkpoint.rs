//! Barrier checkpoints (`CLUGPCK1`).
//!
//! At every pass barrier the coordinator snapshots the complete
//! distributed state — the sequencing [`Token`], the stage about to run,
//! and every worker's table shards — into one [`Checkpoint`]. The
//! supervisor keeps the latest one in memory to replay a failed pass;
//! with `--checkpoint-dir` it is also persisted so a later run can
//! `--resume` past already-finished passes.
//!
//! On-disk format (following the `pack/` header/footer conventions:
//! magic + little-endian body + trailing CRC):
//!
//! ```text
//! [8]  magic "CLUGPCK1"
//! [8]  body length (u64 LE)
//! [..] body (wire-codec encoded)
//! [4]  CRC32 of the body (same IEEE CRC as CLUGPZ packs)
//! ```
//!
//! Files are written to a dot-prefixed temp name, fsynced, then
//! atomically renamed to `ckpt-<seq>.clugpck` — a torn write leaves
//! either no file or a temp file the loader never looks at, and the CRC
//! rejects any partially-flushed rename survivor, so a torn checkpoint is
//! never loadable.

use super::proto::{get_stage, get_token, put_stage, put_token, Stage, Token};
use super::wire::{Rd, Wr};
use crate::error::{PartitionError, Result};
use clugp_graph::pack::crc32;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Magic bytes opening every checkpoint file.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"CLUGPCK1";

/// One table slot's full contents across all workers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TableDump {
    /// Words per row.
    pub width: u32,
    /// Row keys (concatenated worker scans; each worker's range sorted).
    pub keys: Vec<u64>,
    /// Flattened rows, `keys.len() * width` words.
    pub rows: Vec<u64>,
}

/// A complete barrier snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Barrier sequence number (1-based; CLUGP has barriers 1..=3).
    pub seq: u64,
    /// The stage that runs *after* this barrier.
    pub stage: Stage,
    /// Sequencing token at the barrier.
    pub token: Token,
    /// Algorithm name (fingerprint: a checkpoint only resumes the same
    /// algorithm).
    pub algo: String,
    /// Partition count (fingerprint).
    pub k: u32,
    /// Total edge count of the input (fingerprint). Worker count and
    /// chunk size are deliberately *not* part of the fingerprint: results
    /// are bit-identical across both, so a resume may change them.
    pub m: u64,
    /// Vertex-count hint of the input.
    pub n_hint: u64,
    /// Exact edge count derived from degrees (CLUGP; 0 before it is
    /// known).
    pub m_real: u64,
    /// Compacted cluster count (CLUGP; 0 before compaction).
    pub num_clusters: u64,
    /// Per-table state dumps.
    pub tables: Vec<TableDump>,
}

impl Checkpoint {
    /// Whether this checkpoint belongs to the run described by
    /// `(algo, k, m)`.
    pub fn matches(&self, algo: &str, k: u32, m: u64) -> bool {
        self.algo == algo && self.k == k && self.m == m
    }

    /// Canonical file name for a barrier.
    pub fn file_name(seq: u64) -> String {
        format!("ckpt-{seq:05}.clugpck")
    }

    /// Serializes the checkpoint (magic + body + CRC footer).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Wr::new();
        w.u64(self.seq);
        put_stage(&mut w, self.stage);
        put_token(&mut w, &self.token);
        w.str(&self.algo);
        w.u32(self.k);
        w.u64(self.m);
        w.u64(self.n_hint);
        w.u64(self.m_real);
        w.u64(self.num_clusters);
        w.u64(self.tables.len() as u64);
        for t in &self.tables {
            w.u32(t.width);
            w.u64s(&t.keys);
            w.u64s(&t.rows);
        }
        let body = w.into_bytes();
        let mut out = Vec::with_capacity(8 + 8 + body.len() + 4);
        out.extend_from_slice(CHECKPOINT_MAGIC);
        out.extend_from_slice(&(body.len() as u64).to_le_bytes());
        out.extend_from_slice(&body);
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out
    }

    /// Parses and CRC-validates a serialized checkpoint.
    pub fn decode(bytes: &[u8]) -> Result<Checkpoint> {
        let bad = |what: &str| PartitionError::InvalidParam(format!("checkpoint: {what}"));
        if bytes.len() < 20 || &bytes[..8] != CHECKPOINT_MAGIC {
            return Err(bad("bad magic"));
        }
        let body_len = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
        let rest = &bytes[16..];
        if rest.len() != body_len + 4 {
            return Err(bad("truncated"));
        }
        let (body, footer) = rest.split_at(body_len);
        let stored = u32::from_le_bytes(footer.try_into().unwrap());
        if crc32(body) != stored {
            return Err(bad("CRC mismatch"));
        }
        let mut r = Rd::new(body);
        let seq = r.u64()?;
        let stage = get_stage(&mut r)?;
        let token = get_token(&mut r)?;
        let algo = r.str()?;
        let k = r.u32()?;
        let m = r.u64()?;
        let n_hint = r.u64()?;
        let m_real = r.u64()?;
        let num_clusters = r.u64()?;
        let n_tables = r.len(4)?;
        let mut tables = Vec::with_capacity(n_tables);
        for _ in 0..n_tables {
            tables.push(TableDump {
                width: r.u32()?,
                keys: r.u64s()?,
                rows: r.u64s()?,
            });
        }
        if !r.done() {
            return Err(bad("trailing bytes"));
        }
        Ok(Checkpoint {
            seq,
            stage,
            token,
            algo,
            k,
            m,
            n_hint,
            m_real,
            num_clusters,
            tables,
        })
    }
}

fn ck_io(what: &str, e: std::io::Error) -> PartitionError {
    PartitionError::InvalidParam(format!("checkpoint {what}: {e}"))
}

/// Writes `ck` into `dir` with an atomic rename-commit. Returns the
/// committed path.
pub fn write_checkpoint(dir: &Path, ck: &Checkpoint) -> Result<PathBuf> {
    std::fs::create_dir_all(dir).map_err(|e| ck_io("dir", e))?;
    let final_path = dir.join(Checkpoint::file_name(ck.seq));
    let tmp_path = dir.join(format!(".tmp-{}", Checkpoint::file_name(ck.seq)));
    let bytes = ck.encode();
    let mut f = std::fs::File::create(&tmp_path).map_err(|e| ck_io("create", e))?;
    f.write_all(&bytes).map_err(|e| ck_io("write", e))?;
    f.sync_all().map_err(|e| ck_io("sync", e))?;
    drop(f);
    std::fs::rename(&tmp_path, &final_path).map_err(|e| ck_io("commit", e))?;
    Ok(final_path)
}

/// Loads the newest checkpoint in `dir` that decodes, CRC-validates, and
/// matches the `(algo, k, m)` fingerprint. Unreadable, torn, or foreign
/// files are skipped, never fatal.
pub fn load_latest(dir: &Path, algo: &str, k: u32, m: u64) -> Option<Checkpoint> {
    let entries = std::fs::read_dir(dir).ok()?;
    let mut best: Option<Checkpoint> = None;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if !name.starts_with("ckpt-") || !name.ends_with(".clugpck") {
            continue;
        }
        let Ok(bytes) = std::fs::read(entry.path()) else {
            continue;
        };
        let Ok(ck) = Checkpoint::decode(&bytes) else {
            continue;
        };
        if !ck.matches(algo, k, m) {
            continue;
        }
        if best.as_ref().is_none_or(|b| ck.seq > b.seq) {
            best = Some(ck);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            seq: 2,
            stage: Stage::ClugpPairs { num_clusters: 17 },
            token: Token {
                loads: vec![3, 1, 4],
                cursor: 1,
                next_raw: 59,
                splits: 2,
                migrations: 6,
                reroutes: 5,
                table_len: 35,
                carry: Vec::new(),
            },
            algo: "clugp".into(),
            k: 3,
            m: 1000,
            n_hint: 35,
            m_real: 998,
            num_clusters: 17,
            tables: vec![
                TableDump {
                    width: 3,
                    keys: vec![0, 1, 2],
                    rows: vec![9; 9],
                },
                TableDump {
                    width: 1,
                    keys: vec![5],
                    rows: vec![7],
                },
            ],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let ck = sample();
        assert_eq!(Checkpoint::decode(&ck.encode()).unwrap(), ck);
    }

    #[test]
    fn corrupt_or_truncated_bytes_rejected() {
        let bytes = sample().encode();
        // Torn tail.
        assert!(Checkpoint::decode(&bytes[..bytes.len() - 3]).is_err());
        // Flipped body byte fails the CRC.
        let mut bad = bytes.clone();
        bad[20] ^= 0x01;
        assert!(Checkpoint::decode(&bad).is_err());
        // Wrong magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(Checkpoint::decode(&bad).is_err());
    }

    #[test]
    fn dir_store_commit_and_latest_selection() {
        let dir = std::env::temp_dir().join(format!("clugpck-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut ck = sample();
        ck.seq = 1;
        write_checkpoint(&dir, &ck).unwrap();
        ck.seq = 2;
        ck.token.cursor = 2;
        write_checkpoint(&dir, &ck).unwrap();
        // A torn file on disk must never load: fake one by truncating.
        let torn = dir.join(Checkpoint::file_name(3));
        std::fs::write(&torn, &ck.encode()[..30]).unwrap();
        // A checkpoint from a different run is skipped by fingerprint.
        let mut foreign = sample();
        foreign.seq = 9;
        foreign.k = 12;
        write_checkpoint(&dir, &foreign).unwrap();

        let picked = load_latest(&dir, "clugp", 3, 1000).unwrap();
        assert_eq!(picked.seq, 2);
        assert_eq!(picked.token.cursor, 2);
        assert!(load_latest(&dir, "hdrf", 3, 1000).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
