//! Coordinator/worker distributed partitioning (AMPC-style).
//!
//! This module shards the streaming placement pipeline across workers
//! behind a transport-agnostic state service (ROADMAP item 5):
//!
//! * [`table`] — the keyspace-sharded state tables ([`table::StateShard`]
//!   over [`crate::vertex_table::VertexTable`], routed by
//!   [`table::Layout`]) exposing get / upsert-batch / scan.
//! * [`worker`] — owns a contiguous range of the edge stream and drives
//!   the *same per-edge kernels as the monolith* against local shards,
//!   fetching remote rows in per-chunk batches.
//! * [`coordinator`] — splits the stream, sequences passes as barriers,
//!   relays cross-worker state traffic (star topology), runs the
//!   coordinator-side CLUGP stages (compaction, cluster graph, game), and
//!   assembles the final [`crate::partition::Partitioning`].
//! * [`transport`] / [`proto`] / [`wire`] — the exchange: in-process
//!   bounded channels or length-prefixed Unix sockets carrying the same
//!   hand-rolled little-endian frames.
//!
//! Execution model: within each pass the workers run **sequenced** — a
//! streaming token travels worker 0‥N−1, so exactly one worker streams
//! edges at a time while the others answer state requests. That is what
//! makes every configuration (any worker count, any chunk size, either
//! transport) bit-identical to the monolithic partitioner, which is the
//! correctness anchor `tests/distributed_equivalence.rs` pins. See
//! DESIGN.md §7 for the contract and for when multi-process mode pays.

pub mod coordinator;
pub mod proto;
pub mod table;
pub mod transport;
pub mod wire;
pub mod worker;

pub use coordinator::{run_coordinator, DistOutcome};
pub use table::{Layout, MergeOp, StateShard};
pub use transport::{channel_pair, NetStats, Transport, UnixTransport};
pub use worker::run_worker;

use crate::error::{PartitionError, Result};
use clugp_graph::pack::ShardedPackReader;
use clugp_graph::types::Edge;
use std::path::Path;

/// Which transport a distributed run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process bounded channels (default).
    Channel,
    /// Unix stream sockets (exercises the multi-process framing; workers
    /// still run as threads here — `clugp-part --workers N` spawns real
    /// processes).
    Unix,
}

/// Distributed run parameters.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Worker count (≥ 1).
    pub workers: u32,
    /// Exchange flavor.
    pub transport: TransportKind,
    /// Streaming chunk size in edges (0 = the stream default).
    pub chunk_edges: usize,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            workers: 1,
            transport: TransportKind::Channel,
            chunk_edges: 0,
        }
    }
}

/// The edge stream for a distributed run.
#[derive(Debug, Clone, Copy)]
pub enum DistInput<'a> {
    /// An in-memory edge list in stream order.
    Edges {
        /// Vertex-count hint.
        num_vertices: u64,
        /// The edges.
        edges: &'a [Edge],
    },
    /// An on-disk CLUGPZ pack; workers open their own block ranges. Note
    /// pack streams replay in canonical (pack) order, so compare against a
    /// monolith run over the same pack stream.
    Pack(&'a Path),
}

/// Runs `algo` over `input` with `cfg.workers` workers.
///
/// Channel transport hosts workers on plain threads with bounded-channel
/// pipes; Unix transport uses socketpairs with the same length-prefixed
/// framing as multi-process mode. Either way the coordinator runs on the
/// calling thread.
pub fn run_distributed(
    algo: &coordinator::DistAlgo,
    input: DistInput<'_>,
    k: u32,
    cfg: &DistConfig,
) -> Result<DistOutcome> {
    if cfg.workers == 0 {
        return Err(PartitionError::InvalidParam(
            "worker count must be at least 1".into(),
        ));
    }
    let workers = cfg.workers as usize;
    match cfg.transport {
        TransportKind::Channel => {
            let mut coord_ends: Vec<Box<dyn Transport>> = Vec::with_capacity(workers);
            let mut worker_ends = Vec::with_capacity(workers);
            for _ in 0..workers {
                let (c, w) = channel_pair(64);
                coord_ends.push(Box::new(c));
                worker_ends.push(w);
            }
            host_in_process(coord_ends, worker_ends, algo, input, k, cfg)
        }
        TransportKind::Unix => {
            let mut coord_ends: Vec<Box<dyn Transport>> = Vec::with_capacity(workers);
            let mut worker_ends = Vec::with_capacity(workers);
            for _ in 0..workers {
                let (c, w) = UnixTransport::pair()?;
                coord_ends.push(Box::new(c));
                worker_ends.push(w);
            }
            host_in_process(coord_ends, worker_ends, algo, input, k, cfg)
        }
    }
}

fn host_in_process(
    coord_ends: Vec<Box<dyn Transport>>,
    worker_ends: Vec<impl Transport + 'static>,
    algo: &coordinator::DistAlgo,
    input: DistInput<'_>,
    k: u32,
    cfg: &DistConfig,
) -> Result<DistOutcome> {
    // Plain threads, not a rayon scope: worker serve loops block on recv,
    // which would starve the shared pool the solvers run waves on.
    std::thread::scope(|scope| {
        for (i, conn) in worker_ends.into_iter().enumerate() {
            scope.spawn(move || {
                if let Err(e) = run_worker(Box::new(conn)) {
                    // The coordinator sees the matching hangup/Err and
                    // surfaces its own error; this is just a trace aid.
                    eprintln!("ampc worker {i} failed: {e}");
                }
            });
        }
        run_coordinator(coord_ends, algo, input, k, cfg.chunk_edges)
    })
}

/// Splits `total` edges into `workers` contiguous ranges (first `total %
/// workers` ranges get one extra edge). Returns half-open `(start, end)`
/// pairs covering `0..total` in order.
pub fn split_ranges(total: u64, workers: u32) -> Vec<(u64, u64)> {
    let w = u64::from(workers.max(1));
    let base = total / w;
    let extra = total % w;
    let mut out = Vec::with_capacity(workers.max(1) as usize);
    let mut start = 0;
    for i in 0..w {
        let len = base + u64::from(i < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

/// Builds per-worker [`proto::InputSpec`]s for a pack file, handing each
/// worker a contiguous block range (padding with empty ranges when the
/// pack has fewer blocks than workers).
pub fn pack_input_specs(path: &Path, workers: u32) -> Result<Vec<proto::InputSpec>> {
    let reader = ShardedPackReader::open(path)?;
    let shards = reader.shards(workers.max(1) as usize);
    let path_str = path.to_string_lossy().into_owned();
    let mut specs: Vec<proto::InputSpec> = shards
        .iter()
        .map(|s| proto::InputSpec::Pack {
            path: path_str.clone(),
            block_start: s.blocks.start as u64,
            block_end: s.blocks.end as u64,
            edges: s.edges,
        })
        .collect();
    let blocks = reader.index().num_blocks() as u64;
    while specs.len() < workers as usize {
        specs.push(proto::InputSpec::Pack {
            path: path_str.clone(),
            block_start: blocks,
            block_end: blocks,
            edges: 0,
        });
    }
    Ok(specs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_and_balance() {
        assert_eq!(split_ranges(10, 4), vec![(0, 3), (3, 6), (6, 8), (8, 10)]);
        assert_eq!(split_ranges(2, 4), vec![(0, 1), (1, 2), (2, 2), (2, 2)]);
        assert_eq!(split_ranges(0, 2), vec![(0, 0), (0, 0)]);
    }
}
