//! Coordinator/worker distributed partitioning (AMPC-style).
//!
//! This module shards the streaming placement pipeline across workers
//! behind a transport-agnostic state service (ROADMAP item 5):
//!
//! * [`table`] — the keyspace-sharded state tables ([`table::StateShard`]
//!   over [`crate::vertex_table::VertexTable`], routed by
//!   [`table::Layout`]) exposing get / upsert-batch / scan.
//! * [`worker`] — owns a contiguous range of the edge stream and drives
//!   the *same per-edge kernels as the monolith* against local shards,
//!   fetching remote rows in per-chunk batches.
//! * [`coordinator`] — splits the stream, sequences passes as barriers,
//!   relays cross-worker state traffic (star topology), runs the
//!   coordinator-side CLUGP stages (compaction, cluster graph, game), and
//!   assembles the final [`crate::partition::Partitioning`].
//! * [`transport`] / [`proto`] / [`wire`] — the exchange: in-process
//!   bounded channels or length-prefixed Unix sockets carrying the same
//!   hand-rolled little-endian frames.
//!
//! Execution model: within each pass the workers run **sequenced** by
//! default — a streaming token travels worker 0‥N−1, so exactly one
//! worker streams edges at a time while the others answer state
//! requests. That is what makes every configuration (any worker count,
//! any chunk size, either transport) bit-identical to the monolithic
//! partitioner, which is the correctness anchor
//! `tests/distributed_equivalence.rs` pins. [`AmpcMode::Relaxed`] trades
//! that anchor for concurrency: workers stream their ranges
//! simultaneously against worker-local tables and reconcile at periodic
//! epoch barriers with commutative merges, so score reads may be stale
//! within an epoch but the output is still deterministic for a fixed
//! worker count. See DESIGN.md §7 for the sequenced contract and §11 for
//! the consistency dial.

pub mod checkpoint;
pub mod coordinator;
pub mod fault;
pub mod proto;
pub mod table;
pub mod transport;
pub mod wire;
pub mod worker;

pub use coordinator::{run_coordinator, DistOutcome, Respawner};
pub use fault::{FaultAction, FaultInjectingTransport, FaultPlan, FaultScript};
pub use table::{Layout, MergeOp, StateShard};
pub use transport::{channel_pair, NetStats, Transport, UnixTransport, MAX_FRAME_BYTES};
pub use worker::run_worker;

use crate::error::{PartitionError, Result};
use clugp_graph::pack::ShardedPackReader;
use clugp_graph::types::Edge;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// How workers make progress within a pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AmpcMode {
    /// The streaming token travels worker 0‥N−1; exactly one worker
    /// streams at a time and every remote read sees the freshest state.
    /// Bit-identical to the monolith at any worker count.
    #[default]
    Sequenced,
    /// All workers stream concurrently against worker-local tables and
    /// exchange commutative deltas at epoch barriers. Scores may be read
    /// stale within an epoch; output is deterministic for a fixed worker
    /// count but drifts from the monolith (measured by `experiments
    /// ampc`).
    Relaxed,
}

impl AmpcMode {
    /// Wire tag for this mode.
    pub fn tag(self) -> u8 {
        match self {
            AmpcMode::Sequenced => 0,
            AmpcMode::Relaxed => 1,
        }
    }

    /// Decodes a wire tag; `None` for unknown tags.
    pub fn from_tag(t: u8) -> Option<AmpcMode> {
        Some(match t {
            0 => AmpcMode::Sequenced,
            1 => AmpcMode::Relaxed,
            _ => return None,
        })
    }

    /// Human-readable name as accepted by `--ampc-mode`.
    pub fn name(self) -> &'static str {
        match self {
            AmpcMode::Sequenced => "sequenced",
            AmpcMode::Relaxed => "relaxed",
        }
    }
}

/// Which transport a distributed run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process bounded channels (default).
    Channel,
    /// Unix stream sockets (exercises the multi-process framing; workers
    /// still run as threads here — `clugp-part --workers N` spawns real
    /// processes).
    Unix,
}

/// Worker supervision policy: how long a silent worker may stay silent,
/// and how many times the coordinator will replay a pass from the last
/// committed checkpoint before giving up.
#[derive(Debug, Clone)]
pub struct SuperviseConfig {
    /// Maximum silence from an active worker before the link is declared
    /// dead ([`crate::error::FaultKind::Timeout`]). `None` disables
    /// deadlines: a dead worker then only surfaces through EOF/hangup.
    pub worker_timeout: Option<Duration>,
    /// Recovery attempts per run (0 = supervision off: any fault is
    /// fatal, matching the pre-supervision engine exactly).
    pub max_retries: u32,
    /// Base back-off before the first retry; doubles per retry.
    pub backoff: Duration,
}

impl Default for SuperviseConfig {
    fn default() -> Self {
        SuperviseConfig {
            worker_timeout: None,
            max_retries: 0,
            backoff: Duration::from_millis(200),
        }
    }
}

impl SuperviseConfig {
    /// Deadline used when supervision needs a bound even if the user gave
    /// none (probing a possibly-dead worker must not hang).
    pub fn effective_timeout(&self) -> Duration {
        self.worker_timeout.unwrap_or(Duration::from_secs(30))
    }

    /// Heartbeat interval workers are configured with: a quarter of the
    /// timeout, so a healthy-but-quiet worker ticks well inside it.
    pub(crate) fn heartbeat_ms(&self) -> u32 {
        match self.worker_timeout {
            Some(t) => ((t.as_millis() / 4).clamp(5, u128::from(u32::MAX))) as u32,
            None => 0,
        }
    }
}

/// Distributed run parameters.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Worker count (≥ 1).
    pub workers: u32,
    /// Exchange flavor.
    pub transport: TransportKind,
    /// Streaming chunk size in edges (0 = the stream default).
    pub chunk_edges: usize,
    /// Worker supervision / recovery policy.
    pub supervise: SuperviseConfig,
    /// Scripted transport faults (tests and the bench fault leg only).
    pub faults: FaultPlan,
    /// Where barrier checkpoints are persisted (`CLUGPCK1` files). With
    /// supervision enabled but no directory, checkpoints stay in memory.
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume from the newest valid checkpoint in `checkpoint_dir`
    /// instead of starting from the first pass.
    pub resume: bool,
    /// Progress model within a pass (sequenced token vs relaxed epochs).
    pub mode: AmpcMode,
    /// Relaxed mode only: chunks a worker streams between epoch barriers
    /// (0 = the default of 8). Smaller epochs mean fresher scores and
    /// more exchange; sequenced mode ignores this.
    pub epoch_chunks: u32,
    /// Record observability spans/instants on the coordinator and every
    /// worker and merge them into [`DistOutcome::trace`] (DESIGN.md §12).
    /// Off by default; placement decisions are unaffected either way.
    pub trace: bool,
}

/// Default number of chunks per relaxed-mode epoch.
pub const DEFAULT_EPOCH_CHUNKS: u32 = 8;

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            workers: 1,
            transport: TransportKind::Channel,
            chunk_edges: 0,
            supervise: SuperviseConfig::default(),
            faults: FaultPlan::default(),
            checkpoint_dir: None,
            resume: false,
            mode: AmpcMode::Sequenced,
            epoch_chunks: 0,
            trace: false,
        }
    }
}

/// The edge stream for a distributed run.
#[derive(Debug, Clone, Copy)]
pub enum DistInput<'a> {
    /// An in-memory edge list in stream order.
    Edges {
        /// Vertex-count hint.
        num_vertices: u64,
        /// The edges.
        edges: &'a [Edge],
    },
    /// An on-disk CLUGPZ pack; workers open their own block ranges. Note
    /// pack streams replay in canonical (pack) order, so compare against a
    /// monolith run over the same pack stream.
    Pack(&'a Path),
}

/// Runs `algo` over `input` with `cfg.workers` workers.
///
/// Channel transport hosts workers on plain threads with bounded-channel
/// pipes; Unix transport uses socketpairs with the same length-prefixed
/// framing as multi-process mode. Either way the coordinator runs on the
/// calling thread.
pub fn run_distributed(
    algo: &coordinator::DistAlgo,
    input: DistInput<'_>,
    k: u32,
    cfg: &DistConfig,
) -> Result<DistOutcome> {
    if cfg.workers == 0 {
        return Err(PartitionError::InvalidParam(
            "worker count must be at least 1".into(),
        ));
    }
    // Plain threads, not a rayon scope: worker serve loops block on recv,
    // which would starve the shared pool the solvers run waves on.
    std::thread::scope(|scope| {
        // One link = one worker thread. The same constructor serves both
        // the initial fleet and supervisor respawns: a respawned worker is
        // simply a fresh thread on a fresh pipe (the replaced thread sees
        // its coordinator end drop, errors out, and exits).
        let spawn_link = |i: u32| -> Result<Box<dyn Transport>> {
            match cfg.transport {
                TransportKind::Channel => {
                    let (c, w) = channel_pair(64);
                    scope.spawn(move || {
                        if let Err(e) = run_worker(Box::new(w)) {
                            // The coordinator sees the matching hangup/Err
                            // and surfaces its own error; this is just a
                            // trace aid.
                            eprintln!("ampc worker {i} failed: {e}");
                        }
                    });
                    Ok(Box::new(c))
                }
                TransportKind::Unix => {
                    let (c, w) = UnixTransport::pair()?;
                    scope.spawn(move || {
                        if let Err(e) = run_worker(Box::new(w)) {
                            eprintln!("ampc worker {i} failed: {e}");
                        }
                    });
                    Ok(Box::new(c))
                }
            }
        };
        let mut coord_ends: Vec<Box<dyn Transport>> = Vec::with_capacity(cfg.workers as usize);
        for i in 0..cfg.workers {
            coord_ends.push(spawn_link(i)?);
        }
        let mut respawn = |i: u32| spawn_link(i);
        run_coordinator(coord_ends, algo, input, k, cfg, Some(&mut respawn))
    })
}

/// Splits `total` edges into `workers` contiguous ranges (first `total %
/// workers` ranges get one extra edge). Returns half-open `(start, end)`
/// pairs covering `0..total` in order.
pub fn split_ranges(total: u64, workers: u32) -> Vec<(u64, u64)> {
    let w = u64::from(workers.max(1));
    let base = total / w;
    let extra = total % w;
    let mut out = Vec::with_capacity(workers.max(1) as usize);
    let mut start = 0;
    for i in 0..w {
        let len = base + u64::from(i < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

/// Builds per-worker [`proto::InputSpec`]s for a pack file, handing each
/// worker a contiguous block range (padding with empty ranges when the
/// pack has fewer blocks than workers).
pub fn pack_input_specs(path: &Path, workers: u32) -> Result<Vec<proto::InputSpec>> {
    let reader = ShardedPackReader::open(path)?;
    let shards = reader.shards(workers.max(1) as usize);
    let path_str = path.to_string_lossy().into_owned();
    let mut specs: Vec<proto::InputSpec> = shards
        .iter()
        .map(|s| proto::InputSpec::Pack {
            path: path_str.clone(),
            block_start: s.blocks.start as u64,
            block_end: s.blocks.end as u64,
            edges: s.edges,
        })
        .collect();
    let blocks = reader.index().num_blocks() as u64;
    while specs.len() < workers as usize {
        specs.push(proto::InputSpec::Pack {
            path: path_str.clone(),
            block_start: blocks,
            block_end: blocks,
            edges: 0,
        });
    }
    Ok(specs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_and_balance() {
        assert_eq!(split_ranges(10, 4), vec![(0, 3), (3, 6), (6, 8), (8, 10)]);
        assert_eq!(split_ranges(2, 4), vec![(0, 1), (1, 2), (2, 2), (2, 2)]);
        assert_eq!(split_ranges(0, 2), vec![(0, 0), (0, 0)]);
    }
}
