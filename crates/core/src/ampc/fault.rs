//! Deterministic fault injection for AMPC transport links.
//!
//! [`FaultInjectingTransport`] wraps any [`Transport`] and perturbs it at
//! *scripted frame ordinals*: drop the 7th outbound frame, corrupt the
//! 12th inbound one, tear the link down after frame 20. Because the AMPC
//! engine is fully deterministic, frame ordinals are reproducible run to
//! run, which turns "a worker died mid-pass" into a unit-testable event
//! instead of a race. Scripts are grouped into a [`FaultPlan`] keyed by
//! `(worker, incarnation)` — when the supervisor respawns a worker, the
//! replacement link is the next incarnation, so a plan can express "the
//! first link dies, the respawned one is healthy" (recovery succeeds) or
//! "every incarnation dies" (retries exhaust into a typed error).

use super::transport::{NetStats, Transport};
use crate::error::{FaultKind, PartitionError, Result};
use std::time::Duration;

/// One scripted perturbation of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Swallow the frame. On send the call reports success without
    /// transmitting; on recv the arrived frame is discarded and the next
    /// one awaited. The resulting silence surfaces at the peer as a
    /// deadline timeout.
    DropFrame,
    /// Stall the operation for the given duration, then let it through.
    Delay(Duration),
    /// Flip the frame's first byte so the payload fails to decode.
    CorruptFrame,
    /// Tear the link down; this and every later operation fails
    /// [`FaultKind::Disconnected`], and the peer sees EOF/hangup.
    Disconnect,
}

/// Scripted faults for one link incarnation. Ordinals are 0-based and
/// counted per direction (send and recv independently).
#[derive(Debug, Clone, Default)]
pub struct FaultScript {
    /// `(frame ordinal, action)` pairs applied to outbound frames.
    pub on_send: Vec<(u64, FaultAction)>,
    /// `(frame ordinal, action)` pairs applied to inbound frames.
    pub on_recv: Vec<(u64, FaultAction)>,
}

impl FaultScript {
    /// A script whose only entry disconnects the link at outbound frame
    /// `at` — the cheapest way to simulate a worker crash.
    pub fn disconnect_at_send(at: u64) -> FaultScript {
        FaultScript {
            on_send: vec![(at, FaultAction::Disconnect)],
            on_recv: Vec::new(),
        }
    }

    fn is_empty(&self) -> bool {
        self.on_send.is_empty() && self.on_recv.is_empty()
    }
}

/// Faults for a whole worker fleet across respawns.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    entries: Vec<(u32, u32, FaultScript)>,
}

impl FaultPlan {
    /// A plan with no faults (the default for real runs).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// True when no link will be perturbed.
    pub fn is_empty(&self) -> bool {
        self.entries.iter().all(|(_, _, s)| s.is_empty())
    }

    /// Adds `script` for worker `worker`'s link incarnation
    /// `incarnation` (0 = the link it starts with, 1 = first respawn, …).
    pub fn push(&mut self, worker: u32, incarnation: u32, script: FaultScript) {
        self.entries.push((worker, incarnation, script));
    }

    /// The script for one link, if any.
    pub fn script(&self, worker: u32, incarnation: u32) -> Option<&FaultScript> {
        self.entries
            .iter()
            .find(|(w, i, _)| *w == worker && *i == incarnation)
            .map(|(_, _, s)| s)
    }

    /// Generates a single-fault plan from a seed: one pseudo-random
    /// action on a pseudo-random worker's first link at a small frame
    /// ordinal. Deterministic for a given `(seed, workers)`.
    pub fn seeded(seed: u64, workers: u32) -> FaultPlan {
        let mut rng = XorShift64(seed.max(1));
        let worker = (rng.next() % u64::from(workers.max(1))) as u32;
        let ordinal = 2 + rng.next() % 24;
        let action = match rng.next() % 4 {
            0 => FaultAction::DropFrame,
            1 => FaultAction::Delay(Duration::from_millis(5 + (rng.next() % 40))),
            2 => FaultAction::CorruptFrame,
            _ => FaultAction::Disconnect,
        };
        let on_send = rng.next().is_multiple_of(2);
        let mut script = FaultScript::default();
        if on_send {
            script.on_send.push((ordinal, action));
        } else {
            script.on_recv.push((ordinal, action));
        }
        let mut plan = FaultPlan::default();
        plan.push(worker, 0, script);
        plan
    }
}

struct XorShift64(u64);

impl XorShift64 {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// A [`Transport`] wrapper that executes a [`FaultScript`].
pub struct FaultInjectingTransport {
    inner: Option<Box<dyn Transport>>,
    script: FaultScript,
    sent: u64,
    received: u64,
    final_stats: NetStats,
}

impl FaultInjectingTransport {
    /// Wraps `inner`, perturbing it per `script`.
    pub fn new(inner: Box<dyn Transport>, script: FaultScript) -> FaultInjectingTransport {
        FaultInjectingTransport {
            inner: Some(inner),
            script,
            sent: 0,
            received: 0,
            final_stats: NetStats::default(),
        }
    }

    fn action(list: &[(u64, FaultAction)], ordinal: u64) -> Option<FaultAction> {
        list.iter().find(|(at, _)| *at == ordinal).map(|(_, a)| *a)
    }

    /// Drops the wrapped link (the peer observes EOF / hangup).
    fn sever(&mut self, what: &str) -> PartitionError {
        if let Some(t) = self.inner.take() {
            self.final_stats = t.stats();
        }
        PartitionError::fault(
            FaultKind::Disconnected,
            format!("transport {what}: injected disconnect"),
        )
    }

    fn link(&mut self, what: &str) -> Result<&mut Box<dyn Transport>> {
        match self.inner.as_mut() {
            Some(t) => Ok(t),
            None => Err(PartitionError::fault(
                FaultKind::Disconnected,
                format!("transport {what}: link severed by injected disconnect"),
            )),
        }
    }
}

impl Transport for FaultInjectingTransport {
    fn send(&mut self, frame: &[u8]) -> Result<()> {
        let ordinal = self.sent;
        self.sent += 1;
        match Self::action(&self.script.on_send, ordinal) {
            Some(FaultAction::DropFrame) => Ok(()),
            Some(FaultAction::Delay(d)) => {
                std::thread::sleep(d);
                self.link("send")?.send(frame)
            }
            Some(FaultAction::CorruptFrame) => {
                let mut bad = frame.to_vec();
                if let Some(b) = bad.first_mut() {
                    *b ^= 0xFF;
                }
                self.link("send")?.send(&bad)
            }
            Some(FaultAction::Disconnect) => Err(self.sever("send")),
            None => self.link("send")?.send(frame),
        }
    }

    fn recv(&mut self) -> Result<Vec<u8>> {
        loop {
            let ordinal = self.received;
            self.received += 1;
            match Self::action(&self.script.on_recv, ordinal) {
                Some(FaultAction::DropFrame) => {
                    // Consume and discard the arrived frame, then keep
                    // waiting for the next one.
                    let _ = self.link("recv")?.recv()?;
                    continue;
                }
                Some(FaultAction::Delay(d)) => {
                    std::thread::sleep(d);
                    return self.link("recv")?.recv();
                }
                Some(FaultAction::CorruptFrame) => {
                    let mut frame = self.link("recv")?.recv()?;
                    if let Some(b) = frame.first_mut() {
                        *b ^= 0xFF;
                    }
                    return Ok(frame);
                }
                Some(FaultAction::Disconnect) => return Err(self.sever("recv")),
                None => return self.link("recv")?.recv(),
            }
        }
    }

    fn set_deadline(&mut self, timeout: Option<Duration>) {
        if let Some(t) = self.inner.as_mut() {
            t.set_deadline(timeout);
        }
    }

    fn stats(&self) -> NetStats {
        match self.inner.as_ref() {
            Some(t) => t.stats(),
            None => self.final_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ampc::transport::channel_pair;

    fn wrap(script: FaultScript) -> (FaultInjectingTransport, impl Transport) {
        let (a, b) = channel_pair(8);
        (FaultInjectingTransport::new(Box::new(a), script), b)
    }

    #[test]
    fn drop_and_corrupt_on_send() {
        let mut script = FaultScript::default();
        script.on_send.push((1, FaultAction::DropFrame));
        script.on_send.push((2, FaultAction::CorruptFrame));
        let (mut a, mut b) = wrap(script);
        a.send(b"one").unwrap();
        a.send(b"two").unwrap(); // dropped
        a.send(b"three").unwrap(); // corrupted
        assert_eq!(b.recv().unwrap(), b"one");
        let corrupted = b.recv().unwrap();
        assert_eq!(corrupted[0], b't' ^ 0xFF);
        assert_eq!(&corrupted[1..], b"hree");
    }

    #[test]
    fn drop_on_recv_skips_one_frame() {
        let mut script = FaultScript::default();
        script.on_recv.push((0, FaultAction::DropFrame));
        let (mut a, _b) = {
            let (a, mut b) = channel_pair(8);
            b.send(b"lost").unwrap();
            b.send(b"kept").unwrap();
            (FaultInjectingTransport::new(Box::new(a), script), b)
        };
        assert_eq!(a.recv().unwrap(), b"kept");
    }

    #[test]
    fn disconnect_severs_both_directions_and_peer_sees_hangup() {
        let script = FaultScript::disconnect_at_send(1);
        let (mut a, mut b) = wrap(script);
        a.send(b"ok").unwrap();
        let err = a.send(b"boom").unwrap_err();
        assert!(err.is_retryable());
        let err = a.recv().unwrap_err();
        assert!(matches!(
            err,
            PartitionError::Fault {
                kind: FaultKind::Disconnected,
                ..
            }
        ));
        assert_eq!(b.recv().unwrap(), b"ok");
        // Peer's next send fails: the wrapped end was dropped.
        assert!(b.send(b"x").is_err());
        // Stats survive the severed link.
        assert_eq!(a.stats().frames_sent, 1);
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let p1 = FaultPlan::seeded(42, 4);
        let p2 = FaultPlan::seeded(42, 4);
        assert!(!p1.is_empty());
        for w in 0..4 {
            let (a, b) = (p1.script(w, 0), p2.script(w, 0));
            match (a, b) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    assert_eq!(x.on_send, y.on_send);
                    assert_eq!(x.on_recv, y.on_recv);
                }
                _ => panic!("seeded plans diverged"),
            }
        }
        assert!(p1.script(0, 1).is_none());
    }
}
