//! The coordinator half of the coordinator/worker engine.
//!
//! The coordinator owns no edge data. It splits the input into
//! contiguous per-worker ranges, declares the state-table layouts,
//! sequences the passes as barriers (the streaming token travels worker
//! 0‥N−1 inside each pass), relays cross-worker state traffic (the
//! transports form a star, so a worker reaches a remote shard via a
//! coordinator-forwarded [`Msg::Route`]), and runs the pass-2 work the
//! monolith does between streams: cluster compaction, the cluster graph,
//! and the game/greedy cluster assignment.
//!
//! # Fault tolerance
//!
//! With supervision enabled ([`SuperviseConfig::max_retries`] > 0) the
//! coordinator runs as a [`Supervisor`]: at every pass barrier it commits
//! a [`Checkpoint`] (token + every worker's shards), and when a worker
//! link fails retryably mid-pass — EOF, io error, deadline timeout,
//! undecodable frame — it heals the fleet (probes every worker with
//! `ResetTables`, respawns the dead ones through the host-provided
//! [`Respawner`], reconfigures them) and replays the flow from the last
//! committed barrier. Replay is exact because the pass kernels are
//! deterministic and every worker's state is restored, so a recovered
//! run stays bit-identical to an undisturbed one. Worker-*reported*
//! errors ([`Msg::Err`], e.g. a corrupt pack block) stay fatal: they are
//! deterministic and would only recur. The coordinator itself is not
//! survivable — it holds the only copy of the in-flight pass results.

use super::checkpoint::{load_latest, write_checkpoint, Checkpoint, TableDump};
use super::fault::{FaultInjectingTransport, FaultPlan};
use super::proto::{
    AlgoSpec, BatchOp, EpochTable, InputSpec, Msg, PairsPayload, Stage, StateOp, TableDef, Token,
    WorkerSetup,
};
use super::table::{Layout, MergeOp, DEFAULT_STRIPE};
use super::transport::{NetStats, Transport};
use super::worker::{migration_tag, unexpected, T_CPART, T_MAIN};
use super::{
    pack_input_specs, split_ranges, AmpcMode, DistConfig, DistInput, SuperviseConfig,
    DEFAULT_EPOCH_CHUNKS,
};
use crate::baselines::{dbh, grid, hashing, HdrfConfig, MintConfig};
use crate::clugp::cluster_graph::{merge_weighted, ClusterGraph};
use crate::clugp::clustering::{compact_clusters, NO_CLUSTER};
use crate::clugp::transform::load_cap;
use crate::clugp::{greedy_assign, solve_game, ClugpConfig, ClusterAssignMode};
use crate::error::{FaultKind, PartitionError, Result};
use crate::partition::Partitioning;
use crate::vertex_table::{cap_error, VertexTable, DEFAULT_MAX_VERTICES};
use clugp_graph::pack::ShardedPackReader;
use clugp_obs::{self as obs, TraceRecord};
use rustc_hash::FxHashMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Host-provided factory for a replacement worker link: kills whatever is
/// left of worker `i`, brings up a fresh one (thread or process), and
/// returns the coordinator's end of its transport, ready for `Configure`.
pub type Respawner<'a> = &'a mut dyn FnMut(u32) -> Result<Box<dyn Transport>>;

/// Which partitioner a distributed run executes.
///
/// Every variant is driven through the same per-edge kernel as its
/// monolithic counterpart, so a single-worker run is bit-identical to
/// the corresponding `Partitioner` implementation.
#[derive(Debug, Clone)]
pub enum DistAlgo {
    /// PowerGraph random vertex-cut.
    Hashing {
        /// Hash seed (monolith default when built via [`DistAlgo::hashing`]).
        seed: u64,
    },
    /// 2D constrained hashing.
    Grid {
        /// Hash seed.
        seed: u64,
    },
    /// Degree-based hashing.
    Dbh {
        /// Hash seed.
        seed: u64,
        /// Vertex-id cap (see [`DEFAULT_MAX_VERTICES`]).
        max_vertices: u64,
    },
    /// PowerGraph oblivious greedy.
    Greedy {
        /// Vertex-id cap.
        max_vertices: u64,
    },
    /// High-Degree Replicated First.
    Hdrf(HdrfConfig),
    /// Quasi-streaming game partitioning.
    Mint(MintConfig),
    /// The paper's three-pass pipeline.
    Clugp(ClugpConfig),
}

impl DistAlgo {
    /// Hashing with the monolith's default seed.
    pub fn hashing() -> Self {
        DistAlgo::Hashing {
            seed: hashing::DEFAULT_SEED,
        }
    }

    /// Grid with the monolith's default seed.
    pub fn grid() -> Self {
        DistAlgo::Grid {
            seed: grid::DEFAULT_SEED,
        }
    }

    /// DBH with the monolith's defaults.
    pub fn dbh() -> Self {
        DistAlgo::Dbh {
            seed: dbh::DEFAULT_SEED,
            max_vertices: DEFAULT_MAX_VERTICES,
        }
    }

    /// Greedy with the monolith's defaults.
    pub fn greedy() -> Self {
        DistAlgo::Greedy {
            max_vertices: DEFAULT_MAX_VERTICES,
        }
    }

    /// HDRF with the monolith's defaults.
    pub fn hdrf() -> Self {
        DistAlgo::Hdrf(HdrfConfig::default())
    }

    /// Mint with the monolith's defaults.
    pub fn mint() -> Self {
        DistAlgo::Mint(MintConfig::default())
    }

    /// CLUGP with the monolith's defaults.
    pub fn clugp() -> Self {
        DistAlgo::Clugp(ClugpConfig::default())
    }

    /// The display name, matching the monolithic `Partitioner::name`.
    pub fn name(&self) -> &'static str {
        match self {
            DistAlgo::Hashing { .. } => "Hashing",
            DistAlgo::Grid { .. } => "Grid",
            DistAlgo::Dbh { .. } => "DBH",
            DistAlgo::Greedy { .. } => "Greedy",
            DistAlgo::Hdrf(_) => "HDRF",
            DistAlgo::Mint(_) => "Mint",
            DistAlgo::Clugp(cfg) => match (cfg.splitting, cfg.assign_mode) {
                (true, ClusterAssignMode::Game) => "CLUGP",
                (false, ClusterAssignMode::Game) => "CLUGP-S",
                (true, ClusterAssignMode::Greedy) => "CLUGP-G",
                (false, ClusterAssignMode::Greedy) => "CLUGP-SG",
            },
        }
    }
}

/// The result of a distributed run.
#[derive(Debug)]
pub struct DistOutcome {
    /// The final partitioning — bit-identical to the monolith's for the
    /// same stream.
    pub partitioning: Partitioning,
    /// Bytes/frames exchanged over all coordinator↔worker links,
    /// including links retired by respawns.
    pub net: NetStats,
    /// Worker count the run used.
    pub workers: u32,
    /// Pass replays the supervisor performed (0 on an undisturbed run).
    pub recoveries: u32,
    /// Total microseconds spent persisting barrier checkpoints to disk
    /// (encode + tmp write + fsync + rename). Measured on every run with
    /// a checkpoint directory, traced or not.
    pub ckpt_write_us: u64,
    /// Checkpoints persisted to disk.
    pub ckpt_writes: u64,
    /// Total microseconds spent restoring checkpointed state into the
    /// fleet (reset probes + row republish).
    pub ckpt_restore_us: u64,
    /// Checkpoint restores performed (resumes and recoveries).
    pub ckpt_restores: u64,
    /// Merged observability record: coordinator lane plus one lane per
    /// worker. Empty unless [`super::DistConfig::trace`] was set.
    pub trace: TraceRecord,
}

/// Prefixes retryable fault details with the worker index so a terminal
/// error names the link that died.
fn tag_worker(w: usize, e: PartitionError) -> PartitionError {
    match e {
        PartitionError::Fault { kind, detail } => PartitionError::Fault {
            kind,
            detail: format!("worker {w}: {detail}"),
        },
        other => other,
    }
}

struct Coord {
    conns: Vec<Box<dyn Transport>>,
    /// Stats of links replaced by respawns (their traffic still counts).
    retired: NetStats,
    /// Reused encode buffer for every outgoing frame.
    scratch: Vec<u8>,
    /// Whether this run records observability events.
    trace_on: bool,
    /// The merged record: coordinator events land on lane 0 directly,
    /// worker frames are absorbed in `recv`.
    trace: TraceRecord,
}

impl Coord {
    /// Span start helper: a timestamp when tracing, 0 (unused) otherwise.
    fn t0(&self) -> u64 {
        if self.trace_on {
            obs::now_us()
        } else {
            0
        }
    }

    /// Records a coordinator-lane span ending now.
    fn span(&mut self, name: &str, start_us: u64, arg: u64) {
        if self.trace_on {
            self.trace.push(
                obs::LANE_COORDINATOR,
                obs::Event::span_since(name, start_us, arg),
            );
        }
    }

    /// Records a coordinator-lane point event.
    fn instant(&mut self, name: &str, arg: u64) {
        if self.trace_on {
            self.trace
                .push(obs::LANE_COORDINATOR, obs::Event::instant_now(name, arg));
        }
    }

    /// Merges a worker's flushed event frame into its lane, re-basing the
    /// sender's monotonic timestamps onto the coordinator clock via the
    /// `now_us` the frame was stamped with (multi-process lanes have
    /// unrelated epochs; in-process ones get an offset near zero).
    fn absorb_trace(
        &mut self,
        from: usize,
        frame_now_us: u64,
        dropped: u64,
        events: Vec<obs::Event>,
    ) {
        if !self.trace_on {
            return;
        }
        let offset = obs::now_us() as i64 - frame_now_us as i64;
        let lane = obs::worker_lane(from as u32);
        self.trace.dropped += dropped;
        for mut e in events {
            e.ts_us = (e.ts_us as i64 + offset).max(0) as u64;
            self.trace.push(lane, e);
        }
    }

    fn send(&mut self, to: usize, msg: &Msg) -> Result<()> {
        let mut buf = std::mem::take(&mut self.scratch);
        msg.encode_into(&mut buf);
        let res = self.conns[to].send(&buf).map_err(|e| tag_worker(to, e));
        self.scratch = buf;
        res
    }

    fn recv(&mut self, from: usize) -> Result<Msg> {
        loop {
            let frame = self.conns[from].recv().map_err(|e| tag_worker(from, e))?;
            match Msg::decode(&frame) {
                // The observability side-channel piggybacks on every recv
                // path: absorb it and keep waiting for the frame this call
                // was actually after.
                Ok(Msg::TraceEvents {
                    now_us,
                    dropped,
                    events,
                }) => self.absorb_trace(from, now_us, dropped, events),
                // A worker-reported error is deterministic (bad input,
                // corrupt pack): replaying it would only fail again, so it
                // stays fatal.
                Ok(Msg::Err { msg }) => return Err(PartitionError::InvalidParam(msg)),
                Ok(msg) => return Ok(msg),
                // An undecodable frame means the link itself mangled data:
                // a respawn gets a clean stream, so this is retryable.
                Err(e) => {
                    return Err(PartitionError::fault(
                        FaultKind::Corrupt,
                        format!("worker {from}: undecodable frame: {e}"),
                    ))
                }
            }
        }
    }

    fn state_req(&mut self, to: usize, table: u8, op: StateOp) -> Result<Vec<u64>> {
        self.send(to, &Msg::StateReq { table, op })?;
        match self.recv(to)? {
            Msg::StateResp { rows } => Ok(rows),
            other => Err(unexpected(&other)),
        }
    }

    fn scan(&mut self, to: usize, table: u8) -> Result<(Vec<u64>, Vec<u64>)> {
        self.send(to, &Msg::Scan { table })?;
        match self.recv(to)? {
            Msg::ScanResp { keys, rows } => Ok((keys, rows)),
            other => Err(unexpected(&other)),
        }
    }

    /// Runs one stage as a barrier: the token travels worker 0‥N−1, and
    /// while worker `w` streams, the coordinator relays its routing
    /// traffic to the owning shards.
    fn run_stage(
        &mut self,
        stage: Stage,
        mut token: Token,
        assignments: &mut Vec<u32>,
        mut pairs_out: Option<&mut Vec<PairsPayload>>,
    ) -> Result<Token> {
        for w in 0..self.conns.len() {
            let msg = Msg::RunStage {
                stage,
                token,
                mode: AmpcMode::Sequenced,
                epoch: 0,
            };
            self.send(w, &msg)?;
            token = loop {
                match self.recv(w)? {
                    Msg::Route { to, table, op } => {
                        let to = to as usize;
                        if to >= self.conns.len() {
                            return Err(PartitionError::InvalidParam(format!(
                                "route target {to} out of range"
                            )));
                        }
                        let rows = self.state_req(to, table, op)?;
                        self.send(w, &Msg::StateResp { rows })?;
                    }
                    Msg::RouteBatch { to, keys, ops } => {
                        let to = to as usize;
                        if to >= self.conns.len() {
                            return Err(PartitionError::InvalidParam(format!(
                                "route target {to} out of range"
                            )));
                        }
                        // Pure-Put batches are fire-and-forget: the owner
                        // applies them without replying, and frame order on
                        // the star links keeps them ahead of later reads.
                        let wants_reply = ops.iter().any(|op| matches!(op, BatchOp::Get { .. }));
                        self.send(to, &Msg::StateReqBatch { keys, ops })?;
                        if wants_reply {
                            match self.recv(to)? {
                                Msg::StateRespBatch { rows } => {
                                    self.send(w, &Msg::RouteReply { rows })?;
                                }
                                other => return Err(unexpected(&other)),
                            }
                        }
                    }
                    // Proof of life from a quiet worker: resets the recv
                    // deadline simply by having arrived.
                    Msg::Heartbeat => {}
                    Msg::StageDone {
                        token,
                        assignments: part,
                        pairs,
                    } => {
                        assignments.extend(part);
                        if let (Some(out), Some(p)) = (pairs_out.as_deref_mut(), pairs) {
                            out.push(p);
                        }
                        break token;
                    }
                    other => return Err(unexpected(&other)),
                }
            };
        }
        Ok(token)
    }

    /// Relaxed mode: starts `stage` on every worker at once (each gets a
    /// clone of `token0`).
    fn broadcast_stage(&mut self, stage: Stage, token0: &Token, epoch: u32) -> Result<()> {
        for w in 0..self.conns.len() {
            self.send(
                w,
                &Msg::RunStage {
                    stage,
                    token: token0.clone(),
                    mode: AmpcMode::Relaxed,
                    epoch,
                },
            )?;
        }
        Ok(())
    }

    /// Collects one [`Msg::StageDone`] per worker, in worker order (which
    /// is what makes relaxed merges deterministic), returning the tokens.
    fn collect_stage_done(
        &mut self,
        assignments: &mut Vec<u32>,
        mut pairs_out: Option<&mut Vec<PairsPayload>>,
    ) -> Result<Vec<Token>> {
        let mut tokens = Vec::with_capacity(self.conns.len());
        for w in 0..self.conns.len() {
            loop {
                match self.recv(w)? {
                    Msg::Heartbeat => {}
                    Msg::StageDone {
                        token,
                        assignments: part,
                        pairs,
                    } => {
                        assignments.extend(part);
                        if let (Some(out), Some(p)) = (pairs_out.as_deref_mut(), pairs) {
                            out.push(p);
                        }
                        tokens.push(token);
                        break;
                    }
                    other => return Err(unexpected(&other)),
                }
            }
        }
        Ok(tokens)
    }

    /// Drives the epoch barriers of a relaxed stage: each round collects
    /// one [`Msg::EpochDone`] per worker in worker order, folds the deltas
    /// into the committed state, and broadcasts the merged rows for every
    /// key the round touched. Runs until all workers have reported their
    /// final epoch.
    fn run_epoch_rounds(&mut self, k: usize, defs: &[TableDef]) -> Result<()> {
        let workers = self.conns.len();
        let mut committed_loads = vec![0u64; k];
        let mut committed: Vec<FxHashMap<u64, Vec<u64>>> = vec![FxHashMap::default(); defs.len()];
        loop {
            let mut all_last = true;
            let mut touched: Vec<Vec<u64>> = vec![Vec::new(); defs.len()];
            for w in 0..workers {
                let (last, loads, tables) = loop {
                    match self.recv(w)? {
                        Msg::Heartbeat => {}
                        Msg::EpochDone {
                            last,
                            loads,
                            tables,
                        } => break (last, loads, tables),
                        other => return Err(unexpected(&other)),
                    }
                };
                all_last &= last;
                if loads.len() != k {
                    return Err(PartitionError::InvalidParam(
                        "epoch loads do not match partition count".into(),
                    ));
                }
                for (c, d) in committed_loads.iter_mut().zip(&loads) {
                    *c = c.wrapping_add(*d);
                }
                for t in tables {
                    let slot = t.table as usize;
                    let Some(def) = defs.get(slot) else {
                        return Err(PartitionError::InvalidParam(format!(
                            "epoch sync for unknown table slot {}",
                            t.table
                        )));
                    };
                    let width = def.width as usize;
                    if t.rows.len() != t.keys.len() * width {
                        return Err(PartitionError::InvalidParam(
                            "epoch delta payload does not match key count".into(),
                        ));
                    }
                    for (i, &key) in t.keys.iter().enumerate() {
                        let dst = committed[slot]
                            .entry(key)
                            .or_insert_with(|| vec![0u64; width]);
                        t.merge.apply(dst, &t.rows[i * width..(i + 1) * width]);
                    }
                    touched[slot].extend_from_slice(&t.keys);
                }
            }
            let mut sync_tables = Vec::new();
            for (slot, keys) in touched.iter_mut().enumerate() {
                if keys.is_empty() {
                    continue;
                }
                keys.sort_unstable();
                keys.dedup();
                let width = defs[slot].width as usize;
                let mut rows = Vec::with_capacity(keys.len() * width);
                for key in keys.iter() {
                    rows.extend_from_slice(&committed[slot][key]);
                }
                sync_tables.push(EpochTable {
                    table: slot as u8,
                    merge: MergeOp::Put,
                    keys: std::mem::take(keys),
                    rows,
                });
            }
            // Epoch drift: how many distinct keys this reconcile had to
            // merge and rebroadcast (ROADMAP item 4 wants this visible
            // before the EpochSync filtering work can be tuned).
            let drift: u64 = sync_tables.iter().map(|t| t.keys.len() as u64).sum();
            self.instant("epoch_sync", drift);
            for w in 0..workers {
                self.send(
                    w,
                    &Msg::EpochSync {
                        done: all_last,
                        loads: committed_loads.clone(),
                        tables: sync_tables.clone(),
                    },
                )?;
            }
            if all_last {
                return Ok(());
            }
        }
    }

    /// Collects one [`Msg::Pass1Frontier`] per worker, in worker order.
    fn collect_pass1_frontiers(&mut self) -> Result<Vec<Pass1Part>> {
        let mut parts = Vec::with_capacity(self.conns.len());
        for w in 0..self.conns.len() {
            loop {
                match self.recv(w)? {
                    Msg::Heartbeat => {}
                    Msg::Pass1Frontier { keys, rows, vol } => {
                        if rows.len() != keys.len() * 3 {
                            return Err(PartitionError::InvalidParam(
                                "pass-1 frontier payload does not match key count".into(),
                            ));
                        }
                        parts.push(Pass1Part { keys, rows, vol });
                        break;
                    }
                    other => return Err(unexpected(&other)),
                }
            }
        }
        Ok(parts)
    }
}

/// One worker's locally-clustered pass-1 result (relaxed mode).
struct Pass1Part {
    keys: Vec<u64>,
    rows: Vec<u64>,
    vol: Vec<u64>,
}

/// Applies the scripted fault wrapper for `(worker, incarnation)`, if any.
fn wrap_link(
    faults: &FaultPlan,
    worker: u32,
    incarnation: u32,
    link: Box<dyn Transport>,
) -> Box<dyn Transport> {
    match faults.script(worker, incarnation) {
        Some(script) => Box::new(FaultInjectingTransport::new(link, script.clone())),
        None => link,
    }
}

/// The coordinator's supervision state: the live links, the policy, the
/// last committed barrier checkpoint, and everything needed to respawn
/// and reconfigure a worker ([`WorkerSetup`]s, incarnation counters, the
/// fault plan for wrapping replacement links).
struct Supervisor<'a> {
    coord: Coord,
    policy: SuperviseConfig,
    faults: FaultPlan,
    respawn: Option<Respawner<'a>>,
    /// Retained setups for reconfiguring respawned workers. Only kept
    /// when `max_retries > 0` (inline inputs make this a full copy of the
    /// edge stream).
    setups: Vec<WorkerSetup>,
    incarnation: Vec<u32>,
    table_defs: Vec<TableDef>,
    /// Last committed checkpoint; recovery replays the flow from here.
    last: Option<Checkpoint>,
    ckpt_dir: Option<PathBuf>,
    recoveries: u32,
    /// Checkpoint persist/restore durations, accumulated on every run
    /// (the metrics snapshot and the bench fault leg report them even
    /// when event tracing is off).
    ckpt_write_us: u64,
    ckpt_writes: u64,
    ckpt_restore_us: u64,
    ckpt_restores: u64,
    // Checkpoint fingerprint, filled in by `drive`. Relaxed runs use a
    // distinct "<name>+relaxed" fingerprint: their checkpoints are not
    // interchangeable with sequenced ones.
    algo_name: String,
    k: u32,
    m: u64,
    n_hint: u64,
}

impl<'a> Supervisor<'a> {
    fn new(
        conns: Vec<Box<dyn Transport>>,
        algo_name: String,
        cfg: &DistConfig,
        respawn: Option<Respawner<'a>>,
    ) -> Supervisor<'a> {
        let n = conns.len();
        let policy = cfg.supervise.clone();
        let faults = cfg.faults.clone();
        let deadline = deadline_of(&policy);
        let conns: Vec<Box<dyn Transport>> = conns
            .into_iter()
            .enumerate()
            .map(|(w, link)| {
                let mut link = wrap_link(&faults, w as u32, 0, link);
                if deadline.is_some() {
                    link.set_deadline(deadline);
                }
                link
            })
            .collect();
        Supervisor {
            coord: Coord {
                conns,
                retired: NetStats::default(),
                scratch: Vec::new(),
                trace_on: cfg.trace,
                trace: TraceRecord::default(),
            },
            policy,
            faults,
            respawn,
            setups: Vec::new(),
            incarnation: vec![0; n],
            table_defs: Vec::new(),
            last: None,
            ckpt_dir: cfg.checkpoint_dir.clone(),
            recoveries: 0,
            ckpt_write_us: 0,
            ckpt_writes: 0,
            ckpt_restore_us: 0,
            ckpt_restores: 0,
            algo_name,
            k: 0,
            m: 0,
            n_hint: 0,
        }
    }

    fn workers(&self) -> u32 {
        self.coord.conns.len() as u32
    }

    /// Whether barriers commit checkpoints. On when recovery could use
    /// them (retries allowed) or the user asked for them on disk.
    fn checkpointing(&self) -> bool {
        self.policy.max_retries > 0 || self.ckpt_dir.is_some()
    }

    fn can_retry(&self) -> bool {
        self.recoveries < self.policy.max_retries
    }

    /// Backs off (exponentially), then probes every worker and respawns
    /// the dead ones. After `heal` the fleet is uniformly configured and
    /// empty, ready for [`Supervisor::restore`].
    fn recover(&mut self) -> Result<()> {
        self.recoveries += 1;
        self.coord.instant("retry", u64::from(self.recoveries));
        let exp = self.recoveries.saturating_sub(1).min(16);
        let wait = self.policy.backoff.saturating_mul(1u32 << exp);
        if !wait.is_zero() {
            std::thread::sleep(wait);
        }
        self.heal()
    }

    fn heal(&mut self) -> Result<()> {
        for w in 0..self.coord.conns.len() {
            // The probe doubles as the reset: a live worker answers
            // `ResetOk` and is left empty; anything else — timeout, EOF,
            // a stale frame from the aborted pass — condemns the link.
            if self.probe_reset(w).is_ok() {
                continue;
            }
            self.respawn_worker(w)?;
        }
        Ok(())
    }

    fn probe_reset(&mut self, w: usize) -> Result<()> {
        self.coord.send(w, &Msg::ResetTables)?;
        match self.coord.recv(w)? {
            Msg::ResetOk => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    fn respawn_worker(&mut self, w: usize) -> Result<()> {
        let Some(respawn) = self.respawn.as_mut() else {
            return Err(PartitionError::fault(
                FaultKind::Disconnected,
                format!("worker {w} is unresponsive and the host provides no respawner"),
            ));
        };
        if w >= self.setups.len() {
            return Err(PartitionError::fault(
                FaultKind::Disconnected,
                format!("worker {w} lost before its setup was retained"),
            ));
        }
        self.coord.retired.merge(self.coord.conns[w].stats());
        self.coord.instant("respawn", w as u64);
        let link = respawn(w as u32).map_err(|e| tag_worker(w, e))?;
        self.incarnation[w] += 1;
        let mut link = wrap_link(&self.faults, w as u32, self.incarnation[w], link);
        let deadline = deadline_of(&self.policy);
        if deadline.is_some() {
            link.set_deadline(deadline);
        }
        self.coord.conns[w] = link;
        self.coord
            .send(w, &Msg::Configure(Box::new(self.setups[w].clone())))?;
        match self.coord.recv(w)? {
            Msg::ConfigureOk => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Enters barrier `seq`: on a resume targeting exactly this barrier,
    /// restores the checkpointed state and token; otherwise commits a
    /// fresh checkpoint of the current state and hands back `fresh`.
    fn enter_segment(
        &mut self,
        seq: u64,
        stage: Stage,
        fresh: Token,
        resume: Option<&Checkpoint>,
        m_real: u64,
        num_clusters: u64,
    ) -> Result<Token> {
        if let Some(ck) = resume {
            if ck.seq == seq {
                self.restore(ck)?;
                return Ok(ck.token.clone());
            }
        }
        self.barrier(seq, stage, &fresh, m_real, num_clusters)?;
        Ok(fresh)
    }

    /// Commits a checkpoint of the complete distributed state. `m_real`
    /// and `num_clusters` carry the coordinator-side scalars a replay
    /// needs to skip finished segments.
    fn barrier(
        &mut self,
        seq: u64,
        stage: Stage,
        token: &Token,
        m_real: u64,
        num_clusters: u64,
    ) -> Result<()> {
        if !self.checkpointing() {
            return Ok(());
        }
        let workers = self.coord.conns.len();
        let defs = self.table_defs.clone();
        let mut tables = Vec::with_capacity(defs.len());
        for (t, def) in defs.iter().enumerate() {
            let mut dump = TableDump {
                width: def.width,
                keys: Vec::new(),
                rows: Vec::new(),
            };
            // At the first barrier every table is still factory-empty, so
            // an empty dump (restore = plain reset) is exact.
            if seq > 1 {
                for w in 0..workers {
                    let (keys, rows) = self.coord.scan(w, t as u8)?;
                    dump.keys.extend(keys);
                    dump.rows.extend(rows);
                }
            }
            tables.push(dump);
        }
        let ck = Checkpoint {
            seq,
            stage,
            token: token.clone(),
            algo: self.algo_name.clone(),
            k: self.k,
            m: self.m,
            n_hint: self.n_hint,
            m_real,
            num_clusters,
            tables,
        };
        if let Some(dir) = &self.ckpt_dir {
            let t0 = self.coord.t0();
            let started = Instant::now();
            write_checkpoint(dir, &ck)?;
            self.ckpt_write_us += started.elapsed().as_micros() as u64;
            self.ckpt_writes += 1;
            self.coord.span("checkpoint:write", t0, seq);
        }
        self.last = Some(ck);
        Ok(())
    }

    /// Resets every worker and republishes the checkpointed rows to the
    /// owning shards. A mid-pass failure leaves *all* workers dirty (the
    /// sequenced earlier workers already published), so restore always
    /// rebuilds the whole fleet, not just the respawned links.
    fn restore(&mut self, ck: &Checkpoint) -> Result<()> {
        let t0 = self.coord.t0();
        let started = Instant::now();
        let workers = self.coord.conns.len();
        for w in 0..workers {
            self.probe_reset(w)?;
        }
        let defs = self.table_defs.clone();
        for (t, dump) in ck.tables.iter().enumerate() {
            let Some(def) = defs.get(t) else {
                return Err(PartitionError::InvalidParam(format!(
                    "checkpoint has {} tables but the run declares {}",
                    ck.tables.len(),
                    defs.len()
                )));
            };
            let width = def.width as usize;
            let mut by_owner: Vec<(Vec<u64>, Vec<u64>)> = vec![(Vec::new(), Vec::new()); workers];
            for (i, &key) in dump.keys.iter().enumerate() {
                let owner = def.layout.owner(key, workers as u32) as usize;
                by_owner[owner].0.push(key);
                by_owner[owner]
                    .1
                    .extend_from_slice(&dump.rows[i * width..(i + 1) * width]);
            }
            for (owner, (keys, rows)) in by_owner.into_iter().enumerate() {
                if keys.is_empty() {
                    continue;
                }
                self.coord.state_req(
                    owner,
                    t as u8,
                    StateOp::Upsert {
                        merge: MergeOp::Put,
                        keys,
                        rows,
                    },
                )?;
            }
        }
        self.ckpt_restore_us += started.elapsed().as_micros() as u64;
        self.ckpt_restores += 1;
        self.coord.span("checkpoint:restore", t0, ck.seq);
        Ok(())
    }

    fn shutdown(&mut self) {
        for w in 0..self.coord.conns.len() {
            let _ = self.coord.send(w, &Msg::Shutdown);
        }
    }

    fn net(&self) -> NetStats {
        let mut net = self.coord.retired;
        for conn in &self.coord.conns {
            net.merge(conn.stats());
        }
        net
    }
}

/// The per-link recv/send deadline, when supervision needs one. Active
/// retries force a bound even without an explicit timeout: probing a
/// possibly-dead worker must not hang.
fn deadline_of(policy: &SuperviseConfig) -> Option<Duration> {
    if policy.worker_timeout.is_some() || policy.max_retries > 0 {
        Some(policy.effective_timeout())
    } else {
        None
    }
}

/// Runs the coordinator over `conns` (one transport per worker) and
/// returns the merged outcome. Workers are always sent `Shutdown`, even
/// when the run fails, so hosting threads can join. `respawn`, when
/// provided, lets the supervisor replace a dead worker mid-run (see the
/// module docs on fault tolerance).
pub fn run_coordinator(
    conns: Vec<Box<dyn Transport>>,
    algo: &DistAlgo,
    input: DistInput<'_>,
    k: u32,
    cfg: &DistConfig,
    respawn: Option<Respawner<'_>>,
) -> Result<DistOutcome> {
    let workers = conns.len() as u32;
    let algo_name = match cfg.mode {
        AmpcMode::Sequenced => algo.name().to_string(),
        AmpcMode::Relaxed => format!("{}+relaxed", algo.name()),
    };
    let mut sup = Supervisor::new(conns, algo_name, cfg, respawn);
    let result = drive(&mut sup, algo, input, k, cfg);
    sup.shutdown();
    Ok(DistOutcome {
        partitioning: result?,
        net: sup.net(),
        workers,
        recoveries: sup.recoveries,
        ckpt_write_us: sup.ckpt_write_us,
        ckpt_writes: sup.ckpt_writes,
        ckpt_restore_us: sup.ckpt_restore_us,
        ckpt_restores: sup.ckpt_restores,
        trace: std::mem::take(&mut sup.coord.trace),
    })
}

/// Monolith-parity check for the vertex-id cap: the monolith fails when
/// its table hint exceeds the (clamped) cap, before streaming an edge.
fn check_cap(n_hint: u64, limit: u64, what: &str) -> Result<()> {
    let cap = limit.min(DEFAULT_MAX_VERTICES);
    if n_hint > cap {
        return Err(cap_error(what, n_hint, cap));
    }
    Ok(())
}

fn drive(
    sup: &mut Supervisor<'_>,
    algo: &DistAlgo,
    input: DistInput<'_>,
    k: u32,
    cfg: &DistConfig,
) -> Result<Partitioning> {
    let workers = sup.workers();
    // Same validation order as the monolith: config first, then k, then
    // algorithm-specific parameter checks, then the table-cap check.
    if let DistAlgo::Clugp(cfg) = algo {
        cfg.validate()?;
    }
    if k == 0 {
        return Err(PartitionError::InvalidParam("k must be at least 1".into()));
    }
    if let DistAlgo::Mint(cfg) = algo {
        if cfg.batch_size == 0 {
            return Err(PartitionError::InvalidParam(
                "batch_size must be positive".into(),
            ));
        }
    }

    let (n_hint, m_hint, inputs) = match input {
        DistInput::Edges {
            num_vertices,
            edges,
        } => {
            let specs: Vec<InputSpec> = split_ranges(edges.len() as u64, workers)
                .into_iter()
                .map(|(s, e)| InputSpec::Inline {
                    edges: edges[s as usize..e as usize].to_vec(),
                })
                .collect();
            (num_vertices, edges.len() as u64, specs)
        }
        DistInput::Pack(path) => {
            let (n, m) = {
                let reader = ShardedPackReader::open(path)?;
                (reader.header().num_vertices, reader.header().num_edges)
            };
            (n, m, pack_input_specs(path, workers)?)
        }
    };

    match algo {
        DistAlgo::Dbh { max_vertices, .. } => {
            check_cap(n_hint, *max_vertices, "num_vertices hint")?
        }
        DistAlgo::Greedy { max_vertices } => check_cap(n_hint, *max_vertices, "num_vertices")?,
        DistAlgo::Hdrf(cfg) => check_cap(n_hint, cfg.max_vertices, "num_vertices hint")?,
        DistAlgo::Clugp(cfg) => check_cap(n_hint, cfg.max_vertices, "num_vertices hint")?,
        _ => {}
    }

    let vrange = Layout::range_for(n_hint, workers);
    let striped = Layout::Striped {
        stripe: DEFAULT_STRIPE,
    };
    let replica_width = ((k as usize).div_ceil(64).max(1)) as u32;
    let tables: Vec<TableDef> = match algo {
        DistAlgo::Hashing { .. } | DistAlgo::Grid { .. } | DistAlgo::Mint(_) => Vec::new(),
        DistAlgo::Dbh { .. } => vec![TableDef {
            layout: vrange,
            width: 1,
        }],
        DistAlgo::Greedy { .. } => vec![TableDef {
            layout: vrange,
            width: replica_width,
        }],
        DistAlgo::Hdrf(_) => vec![
            TableDef {
                layout: vrange,
                width: replica_width,
            },
            TableDef {
                layout: vrange,
                width: 1,
            },
        ],
        DistAlgo::Clugp(_) => vec![
            TableDef {
                layout: vrange,
                width: 3,
            },
            TableDef {
                layout: striped,
                width: 1,
            },
            TableDef {
                layout: striped,
                width: 1,
            },
        ],
    };

    let algo_spec = match algo {
        DistAlgo::Hashing { seed } => AlgoSpec::Hashing { seed: *seed },
        DistAlgo::Grid { seed } => AlgoSpec::Grid { seed: *seed },
        DistAlgo::Dbh { seed, max_vertices } => AlgoSpec::Dbh {
            seed: *seed,
            max_vertices: *max_vertices,
        },
        DistAlgo::Greedy { max_vertices } => AlgoSpec::Greedy {
            max_vertices: *max_vertices,
        },
        DistAlgo::Hdrf(cfg) => AlgoSpec::Hdrf {
            lambda: cfg.lambda,
            epsilon: cfg.epsilon,
            max_vertices: cfg.max_vertices,
        },
        DistAlgo::Mint(cfg) => AlgoSpec::Mint {
            batch: cfg.batch_size as u64,
            wave: cfg.wave_width as u64,
            threads: cfg.threads as u64,
            rounds: cfg.max_rounds as u64,
            alpha: cfg.balance_weight,
            seed: cfg.seed,
        },
        DistAlgo::Clugp(cfg) => AlgoSpec::Clugp {
            splitting: cfg.splitting,
            migration: migration_tag(cfg.migration),
            max_vertices: cfg.max_vertices,
        },
    };

    let heartbeat_ms = cfg.supervise.heartbeat_ms();
    let mut setups = Vec::with_capacity(workers as usize);
    for (w, input) in inputs.into_iter().enumerate() {
        setups.push(WorkerSetup {
            worker: w as u32,
            workers,
            k,
            chunk: cfg.chunk_edges.min(u32::MAX as usize) as u32,
            heartbeat_ms,
            algo: algo_spec.clone(),
            input,
            tables: tables.clone(),
            trace: cfg.trace,
        });
    }
    for (w, setup) in setups.iter().enumerate() {
        sup.coord
            .send(w, &Msg::Configure(Box::new(setup.clone())))?;
    }
    for w in 0..workers as usize {
        match sup.coord.recv(w)? {
            Msg::ConfigureOk => {}
            other => return Err(unexpected(&other)),
        }
    }

    sup.table_defs = tables;
    sup.k = k;
    sup.m = m_hint;
    sup.n_hint = n_hint;
    if sup.policy.max_retries > 0 {
        // Only retained when a respawn could need to re-Configure.
        sup.setups = setups;
    }

    let mut resume: Option<Checkpoint> = if cfg.resume {
        let Some(dir) = &sup.ckpt_dir else {
            return Err(PartitionError::InvalidParam(
                "resume requires a checkpoint directory".into(),
            ));
        };
        load_latest(dir, &sup.algo_name, k, m_hint)
    } else {
        None
    };

    let mode = cfg.mode;
    let epoch = if cfg.epoch_chunks == 0 {
        DEFAULT_EPOCH_CHUNKS
    } else {
        cfg.epoch_chunks
    };

    // The recovery loop: replay the flow from the last committed barrier
    // until it finishes, a fault exhausts the retry budget, or a fatal
    // (deterministic) error surfaces.
    loop {
        let attempt = match algo {
            DistAlgo::Clugp(cfg) => {
                clugp_flow(sup, cfg, n_hint, m_hint, k, resume.as_ref(), mode, epoch)
            }
            _ => baseline_flow(sup, algo, n_hint, k, resume.as_ref(), mode, epoch),
        };
        match attempt {
            Ok(p) => return Ok(p),
            Err(e) if e.is_retryable() && sup.can_retry() => {
                sup.recover()?;
                resume = sup.last.clone();
            }
            Err(e) => return Err(e),
        }
    }
}

/// Single-stage baselines behind one barrier: a replay restarts the whole
/// (only) pass from an empty-table state.
#[allow(clippy::too_many_arguments)]
fn baseline_flow(
    sup: &mut Supervisor<'_>,
    algo: &DistAlgo,
    n_hint: u64,
    k: u32,
    resume: Option<&Checkpoint>,
    mode: AmpcMode,
    epoch: u32,
) -> Result<Partitioning> {
    let stage = Stage::Baseline;
    let fresh = Token {
        loads: vec![0; k as usize],
        ..Default::default()
    };
    let token0 = sup.enter_segment(1, stage, fresh, resume, 0, 0)?;
    let t0 = sup.coord.t0();
    let mut assignments = Vec::new();
    let token = match mode {
        AmpcMode::Sequenced => sup.coord.run_stage(stage, token0, &mut assignments, None)?,
        AmpcMode::Relaxed => {
            sup.coord.broadcast_stage(stage, &token0, epoch)?;
            // Epoch-synced algos exchange deltas mid-stage; stateless ones
            // (Hashing, Mint) just stream to StageDone and the coordinator
            // sums their load tallies.
            let epoch_synced = matches!(
                algo,
                DistAlgo::Grid { .. }
                    | DistAlgo::Dbh { .. }
                    | DistAlgo::Greedy { .. }
                    | DistAlgo::Hdrf(_)
            );
            if epoch_synced {
                let defs = sup.table_defs.clone();
                sup.coord.run_epoch_rounds(k as usize, &defs)?;
            }
            let tokens = sup.coord.collect_stage_done(&mut assignments, None)?;
            merge_relaxed_tokens(tokens, !epoch_synced)
        }
    };
    sup.coord
        .span("pass:baseline", t0, assignments.len() as u64);
    let num_vertices = match algo {
        DistAlgo::Dbh { .. } | DistAlgo::Greedy { .. } | DistAlgo::Hdrf(_) => {
            n_hint.max(token.table_len)
        }
        _ => n_hint,
    };
    Ok(Partitioning {
        k,
        num_vertices,
        assignments,
        loads: token.loads,
    })
}

/// Folds per-worker relaxed tokens into one, in worker order. Loads are
/// summed only when the stage did not epoch-sync them (epoch-synced
/// stages already return the committed totals in every token).
fn merge_relaxed_tokens(tokens: Vec<Token>, sum_loads: bool) -> Token {
    let mut iter = tokens.into_iter();
    let mut merged = iter.next().unwrap_or_default();
    for t in iter {
        if sum_loads {
            for (a, b) in merged.loads.iter_mut().zip(&t.loads) {
                *a = a.wrapping_add(*b);
            }
        }
        merged.cursor = merged.cursor.max(t.cursor);
        merged.next_raw += t.next_raw;
        merged.splits += t.splits;
        merged.migrations += t.migrations;
        merged.reroutes += t.reroutes;
        merged.table_len = merged.table_len.max(t.table_len);
    }
    merged
}

/// Merges locally-clustered pass-1 frontiers into global vertex state.
///
/// Each worker's raw cluster ids are offset by the running total, so ids
/// stay distinct. A vertex claimed by several workers (it appears in more
/// than one range) goes to the cluster with the larger volume, ties to
/// the lower-indexed worker (strict `>` while scanning workers in
/// ascending order); degrees sum and divided-flags OR across claims.
/// Returns the global raw-cluster count.
fn merge_pass1_frontiers(
    parts: Vec<Pass1Part>,
    cluster_of: &mut VertexTable<u32>,
    degree: &mut VertexTable<u32>,
    divided: &mut VertexTable<bool>,
) -> Result<u64> {
    let total: u64 = parts.iter().map(|p| p.vol.len() as u64).sum();
    if total >= u64::from(NO_CLUSTER) {
        return Err(PartitionError::InvalidParam(format!(
            "relaxed pass 1 produced {total} raw clusters, above the id limit"
        )));
    }
    let mut vols: Vec<u64> = Vec::with_capacity(total as usize);
    for p in &parts {
        vols.extend_from_slice(&p.vol);
    }
    // The winning claim's volume per vertex, keyed by vertex id.
    let mut best_vol: FxHashMap<u32, u64> = FxHashMap::default();
    let mut base = 0u64;
    for p in &parts {
        for (i, &key) in p.keys.iter().enumerate() {
            let v = key as u32;
            cluster_of.ensure(v)?;
            degree.ensure(v)?;
            divided.ensure(v)?;
            let w0 = p.rows[3 * i];
            let d = p.rows[3 * i + 1] as u32;
            let dv = p.rows[3 * i + 2] != 0;
            degree[v] = degree[v].saturating_add(d);
            divided[v] |= dv;
            if w0 != 0 {
                let c = (base + (w0 - 1)) as u32;
                let cv = vols[c as usize];
                let cur = best_vol.get(&v).copied();
                if cur.is_none_or(|b| cv > b) {
                    best_vol.insert(v, cv);
                    cluster_of[v] = c;
                }
            }
        }
        base += p.vol.len() as u64;
    }
    Ok(total)
}

/// Scans a striped/ranged table off every worker's shards and broadcasts
/// the concatenation to the whole fleet as a read-only [`Msg::TableCast`]
/// mirror for the next relaxed stage.
fn cast_table(sup: &mut Supervisor<'_>, table: u8) -> Result<()> {
    let workers = sup.coord.conns.len();
    let mut keys = Vec::new();
    let mut rows = Vec::new();
    for w in 0..workers {
        let (k, r) = sup.coord.scan(w, table)?;
        keys.extend(k);
        rows.extend(r);
    }
    for w in 0..workers {
        sup.coord.send(
            w,
            &Msg::TableCast {
                table,
                keys: keys.clone(),
                rows: rows.clone(),
            },
        )?;
    }
    Ok(())
}

/// The CLUGP three-pass flow: pass 1 streams clustering through the
/// sharded vertex/volume tables; the coordinator then compacts clusters
/// (recomputing dense volumes from degrees), republishes dense rows,
/// collects the sharded cluster-graph partials, solves the game, pushes
/// the cluster→partition map, and runs the transformation pass.
///
/// The flow is segmented at three barriers (before pass 1, pass 2a, and
/// pass 3); `resume` — from crash recovery or `--resume` — skips segments
/// the checkpoint already finished, carrying `m_real` / `num_clusters`
/// from it instead of recomputing them.
#[allow(clippy::too_many_arguments)]
fn clugp_flow(
    sup: &mut Supervisor<'_>,
    cfg: &ClugpConfig,
    n_hint: u64,
    m_hint: u64,
    k: u32,
    resume: Option<&Checkpoint>,
    mode: AmpcMode,
    epoch: u32,
) -> Result<Partitioning> {
    let workers = sup.workers();
    let relaxed = mode == AmpcMode::Relaxed;
    let target = resume.map_or(0, |ck| ck.seq);
    let m_real: u64;
    let num_clusters: u64;

    if target > 1 {
        let ck = resume.expect("target > 1 implies a checkpoint");
        m_real = ck.m_real;
        num_clusters = ck.num_clusters;
    } else {
        // Pass 1 (same hint rule as the monolith: no length hint disables
        // splitting by an effectively infinite vmax).
        let vmax = if m_hint > 0 {
            cfg.vmax(m_hint, k)
        } else {
            u64::MAX
        };
        let stage = Stage::ClugpPass1 { vmax };
        let token0 = sup.enter_segment(1, stage, Token::default(), resume, 0, 0)?;
        let t0 = sup.coord.t0();

        // Assemble the authoritative vertex state: sequenced runs scan the
        // sharded tables; relaxed runs merge the locally-clustered
        // frontiers every worker ships ahead of StageDone.
        let mut cluster_of: VertexTable<u32> =
            VertexTable::with_limit(n_hint, NO_CLUSTER, cfg.max_vertices)?;
        let mut degree: VertexTable<u32> = VertexTable::with_limit(n_hint, 0, cfg.max_vertices)?;
        let mut divided: VertexTable<bool> =
            VertexTable::with_limit(n_hint, false, cfg.max_vertices)?;
        let mut no_assign = Vec::new();
        let raw_count = if relaxed {
            sup.coord.broadcast_stage(stage, &token0, epoch)?;
            let parts = sup.coord.collect_pass1_frontiers()?;
            sup.coord.collect_stage_done(&mut no_assign, None)?;
            merge_pass1_frontiers(parts, &mut cluster_of, &mut degree, &mut divided)? as usize
        } else {
            let token = sup.coord.run_stage(stage, token0, &mut no_assign, None)?;
            for w in 0..workers as usize {
                let (keys, rows) = sup.coord.scan(w, T_MAIN)?;
                for (i, &key) in keys.iter().enumerate() {
                    let v = key as u32;
                    cluster_of.ensure(v)?;
                    degree.ensure(v)?;
                    divided.ensure(v)?;
                    let w0 = rows[3 * i];
                    cluster_of[v] = if w0 == 0 { NO_CLUSTER } else { (w0 - 1) as u32 };
                    degree[v] = rows[3 * i + 1] as u32;
                    divided[v] = rows[3 * i + 2] != 0;
                }
            }
            token.next_raw as usize
        };
        // Exact edge count, independent of the hint (each edge added 2).
        m_real = degree.iter().map(|&d| u64::from(d)).sum::<u64>() / 2;

        // Pass 2a prelude: dense cluster ids (volumes recomputed from
        // degrees, so the raw volume table is no longer needed).
        let (nc, _volumes) = compact_clusters(&mut cluster_of, &degree, raw_count);
        num_clusters = u64::from(nc);

        // Republish dense width-3 rows for every vertex so passes 2b/3
        // see dense ids wherever they fetch from.
        let vlayout = sup.table_defs[0].layout;
        let mut by_owner: Vec<(Vec<u64>, Vec<u64>)> =
            vec![(Vec::new(), Vec::new()); workers as usize];
        for v in 0..cluster_of.len() {
            let owner = vlayout.owner(v, workers) as usize;
            let vid = v as u32;
            let c = cluster_of[vid];
            by_owner[owner].0.push(v);
            by_owner[owner]
                .1
                .push(if c == NO_CLUSTER { 0 } else { u64::from(c) + 1 });
            by_owner[owner].1.push(u64::from(degree[vid]));
            by_owner[owner].1.push(u64::from(divided[vid]));
        }
        for (owner, (keys, rows)) in by_owner.into_iter().enumerate() {
            if keys.is_empty() {
                continue;
            }
            sup.coord.state_req(
                owner,
                T_MAIN,
                StateOp::Upsert {
                    merge: MergeOp::Put,
                    keys,
                    rows,
                },
            )?;
        }
        // Pass 1 proper plus the coordinator's compaction/republish work
        // between passes — the "streaming clustering" half of Fig. 10.
        sup.coord.span("pass:pass1", t0, m_real);
    }

    if target <= 2 {
        // Pass 2a: the cluster graph, from per-worker partials merged in
        // worker (= stream) order.
        let stage = Stage::ClugpPairs { num_clusters };
        let token0 = sup.enter_segment(2, stage, Token::default(), resume, m_real, num_clusters)?;
        let t0 = sup.coord.t0();
        let mut no_assign = Vec::new();
        let mut pairs: Vec<PairsPayload> = Vec::new();
        if relaxed {
            // The cast must follow enter_segment: a resumed run restores
            // the shards first, and the scan reads the restored rows.
            cast_table(sup, T_MAIN)?;
            sup.coord.broadcast_stage(stage, &token0, epoch)?;
            sup.coord
                .collect_stage_done(&mut no_assign, Some(&mut pairs))?;
        } else {
            sup.coord
                .run_stage(stage, token0, &mut no_assign, Some(&mut pairs))?;
        }
        let mut intra = vec![0u64; num_clusters as usize];
        let mut agg: Vec<(u64, u32)> = Vec::new();
        for part in &pairs {
            for &(c, w) in &part.intra {
                intra[c as usize] += w;
            }
            agg = merge_weighted(&agg, &part.agg);
        }
        let cg = ClusterGraph::from_parts(num_clusters as u32, intra, &agg);

        // Pass 2b: cluster → partition.
        let cluster_partition = match cfg.assign_mode {
            ClusterAssignMode::Game => solve_game(&cg, k, cfg)?.partition_of,
            ClusterAssignMode::Greedy => greedy_assign::greedy_assign(&cg, k),
        };
        let claylout = sup.table_defs[T_CPART as usize].layout;
        let mut by_owner: Vec<(Vec<u64>, Vec<u64>)> =
            vec![(Vec::new(), Vec::new()); workers as usize];
        for (c, &p) in cluster_partition.iter().enumerate() {
            let owner = claylout.owner(c as u64, workers) as usize;
            by_owner[owner].0.push(c as u64);
            by_owner[owner].1.push(u64::from(p));
        }
        for (owner, (keys, rows)) in by_owner.into_iter().enumerate() {
            if keys.is_empty() {
                continue;
            }
            sup.coord.state_req(
                owner,
                T_CPART,
                StateOp::Upsert {
                    merge: MergeOp::Put,
                    keys,
                    rows,
                },
            )?;
        }
        // Cluster graph + game/greedy assignment + map publish — the
        // "partitioning" half of Fig. 10.
        sup.coord.span("pass:pairs", t0, num_clusters);
    }

    // Pass 3: partition transformation under the balance cap.
    let lmax = load_cap(cfg.tau, m_real, k);
    let stage = Stage::ClugpTransform { lmax };
    let token0 = sup.enter_segment(
        3,
        stage,
        Token {
            loads: vec![0; k as usize],
            ..Default::default()
        },
        resume,
        m_real,
        num_clusters,
    )?;
    let t0 = sup.coord.t0();
    let mut assignments = Vec::new();
    let token = if relaxed {
        cast_table(sup, T_MAIN)?;
        cast_table(sup, T_CPART)?;
        sup.coord.broadcast_stage(stage, &token0, epoch)?;
        let tokens = sup.coord.collect_stage_done(&mut assignments, None)?;
        merge_relaxed_tokens(tokens, true)
    } else {
        sup.coord.run_stage(stage, token0, &mut assignments, None)?
    };
    sup.coord
        .span("pass:transform", t0, assignments.len() as u64);
    Ok(Partitioning {
        k,
        // `table_len` is the max vertex id (+1) any worker saw — the same
        // quantity the monolith reads off its table — so this matches the
        // pre-supervision `n_hint.max(cluster_of.len())` while staying
        // computable on a resumed run that never scanned pass-1 state.
        num_vertices: n_hint.max(token.table_len),
        assignments,
        loads: token.loads,
    })
}
