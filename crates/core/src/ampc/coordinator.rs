//! The coordinator half of the coordinator/worker engine.
//!
//! The coordinator owns no edge data. It splits the input into
//! contiguous per-worker ranges, declares the state-table layouts,
//! sequences the passes as barriers (the streaming token travels worker
//! 0‥N−1 inside each pass), relays cross-worker state traffic (the
//! transports form a star, so a worker reaches a remote shard via a
//! coordinator-forwarded [`Msg::Route`]), and runs the pass-2 work the
//! monolith does between streams: cluster compaction, the cluster graph,
//! and the game/greedy cluster assignment.

use super::proto::{
    AlgoSpec, InputSpec, Msg, PairsPayload, Stage, StateOp, TableDef, Token, WorkerSetup,
};
use super::table::{Layout, MergeOp, DEFAULT_STRIPE};
use super::transport::{NetStats, Transport};
use super::worker::{migration_tag, unexpected, T_CPART, T_MAIN};
use super::{pack_input_specs, split_ranges, DistInput};
use crate::baselines::{dbh, grid, hashing, HdrfConfig, MintConfig};
use crate::clugp::cluster_graph::{merge_weighted, ClusterGraph};
use crate::clugp::clustering::{compact_clusters, NO_CLUSTER};
use crate::clugp::transform::load_cap;
use crate::clugp::{greedy_assign, solve_game, ClugpConfig, ClusterAssignMode};
use crate::error::{PartitionError, Result};
use crate::partition::Partitioning;
use crate::vertex_table::{cap_error, VertexTable, DEFAULT_MAX_VERTICES};
use clugp_graph::pack::ShardedPackReader;

/// Which partitioner a distributed run executes.
///
/// Every variant is driven through the same per-edge kernel as its
/// monolithic counterpart, so a single-worker run is bit-identical to
/// the corresponding `Partitioner` implementation.
#[derive(Debug, Clone)]
pub enum DistAlgo {
    /// PowerGraph random vertex-cut.
    Hashing {
        /// Hash seed (monolith default when built via [`DistAlgo::hashing`]).
        seed: u64,
    },
    /// 2D constrained hashing.
    Grid {
        /// Hash seed.
        seed: u64,
    },
    /// Degree-based hashing.
    Dbh {
        /// Hash seed.
        seed: u64,
        /// Vertex-id cap (see [`DEFAULT_MAX_VERTICES`]).
        max_vertices: u64,
    },
    /// PowerGraph oblivious greedy.
    Greedy {
        /// Vertex-id cap.
        max_vertices: u64,
    },
    /// High-Degree Replicated First.
    Hdrf(HdrfConfig),
    /// Quasi-streaming game partitioning.
    Mint(MintConfig),
    /// The paper's three-pass pipeline.
    Clugp(ClugpConfig),
}

impl DistAlgo {
    /// Hashing with the monolith's default seed.
    pub fn hashing() -> Self {
        DistAlgo::Hashing {
            seed: hashing::DEFAULT_SEED,
        }
    }

    /// Grid with the monolith's default seed.
    pub fn grid() -> Self {
        DistAlgo::Grid {
            seed: grid::DEFAULT_SEED,
        }
    }

    /// DBH with the monolith's defaults.
    pub fn dbh() -> Self {
        DistAlgo::Dbh {
            seed: dbh::DEFAULT_SEED,
            max_vertices: DEFAULT_MAX_VERTICES,
        }
    }

    /// Greedy with the monolith's defaults.
    pub fn greedy() -> Self {
        DistAlgo::Greedy {
            max_vertices: DEFAULT_MAX_VERTICES,
        }
    }

    /// HDRF with the monolith's defaults.
    pub fn hdrf() -> Self {
        DistAlgo::Hdrf(HdrfConfig::default())
    }

    /// Mint with the monolith's defaults.
    pub fn mint() -> Self {
        DistAlgo::Mint(MintConfig::default())
    }

    /// CLUGP with the monolith's defaults.
    pub fn clugp() -> Self {
        DistAlgo::Clugp(ClugpConfig::default())
    }

    /// The display name, matching the monolithic `Partitioner::name`.
    pub fn name(&self) -> &'static str {
        match self {
            DistAlgo::Hashing { .. } => "Hashing",
            DistAlgo::Grid { .. } => "Grid",
            DistAlgo::Dbh { .. } => "DBH",
            DistAlgo::Greedy { .. } => "Greedy",
            DistAlgo::Hdrf(_) => "HDRF",
            DistAlgo::Mint(_) => "Mint",
            DistAlgo::Clugp(cfg) => match (cfg.splitting, cfg.assign_mode) {
                (true, ClusterAssignMode::Game) => "CLUGP",
                (false, ClusterAssignMode::Game) => "CLUGP-S",
                (true, ClusterAssignMode::Greedy) => "CLUGP-G",
                (false, ClusterAssignMode::Greedy) => "CLUGP-SG",
            },
        }
    }
}

/// The result of a distributed run.
#[derive(Debug)]
pub struct DistOutcome {
    /// The final partitioning — bit-identical to the monolith's for the
    /// same stream.
    pub partitioning: Partitioning,
    /// Bytes/frames exchanged over all coordinator↔worker links.
    pub net: NetStats,
    /// Worker count the run used.
    pub workers: u32,
}

struct Coord {
    conns: Vec<Box<dyn Transport>>,
}

impl Coord {
    fn send(&mut self, to: usize, msg: &Msg) -> Result<()> {
        self.conns[to].send(&msg.encode())
    }

    fn recv(&mut self, from: usize) -> Result<Msg> {
        match Msg::decode(&self.conns[from].recv()?)? {
            Msg::Err { msg } => Err(PartitionError::InvalidParam(msg)),
            msg => Ok(msg),
        }
    }

    fn state_req(&mut self, to: usize, table: u8, op: StateOp) -> Result<Vec<u64>> {
        self.send(to, &Msg::StateReq { table, op })?;
        match self.recv(to)? {
            Msg::StateResp { rows } => Ok(rows),
            other => Err(unexpected(&other)),
        }
    }

    fn scan(&mut self, to: usize, table: u8) -> Result<(Vec<u64>, Vec<u64>)> {
        self.send(to, &Msg::Scan { table })?;
        match self.recv(to)? {
            Msg::ScanResp { keys, rows } => Ok((keys, rows)),
            other => Err(unexpected(&other)),
        }
    }

    /// Runs one stage as a barrier: the token travels worker 0‥N−1, and
    /// while worker `w` streams, the coordinator relays its `Route`
    /// requests to the owning shards.
    fn run_stage(
        &mut self,
        stage: Stage,
        mut token: Token,
        assignments: &mut Vec<u32>,
        mut pairs_out: Option<&mut Vec<PairsPayload>>,
    ) -> Result<Token> {
        for w in 0..self.conns.len() {
            let msg = Msg::RunStage { stage, token };
            self.send(w, &msg)?;
            token = loop {
                match self.recv(w)? {
                    Msg::Route { to, table, op } => {
                        let to = to as usize;
                        if to >= self.conns.len() {
                            return Err(PartitionError::InvalidParam(format!(
                                "route target {to} out of range"
                            )));
                        }
                        let rows = self.state_req(to, table, op)?;
                        self.send(w, &Msg::StateResp { rows })?;
                    }
                    Msg::StageDone {
                        token,
                        assignments: part,
                        pairs,
                    } => {
                        assignments.extend(part);
                        if let (Some(out), Some(p)) = (pairs_out.as_deref_mut(), pairs) {
                            out.push(p);
                        }
                        break token;
                    }
                    other => return Err(unexpected(&other)),
                }
            };
        }
        Ok(token)
    }
}

/// Runs the coordinator over `conns` (one transport per worker) and
/// returns the merged outcome. Workers are always sent `Shutdown`, even
/// when the run fails, so hosting threads can join.
pub fn run_coordinator(
    conns: Vec<Box<dyn Transport>>,
    algo: &DistAlgo,
    input: DistInput<'_>,
    k: u32,
    chunk_edges: usize,
) -> Result<DistOutcome> {
    let workers = conns.len() as u32;
    let mut coord = Coord { conns };
    let result = drive(&mut coord, algo, input, k, chunk_edges);
    for w in 0..coord.conns.len() {
        let _ = coord.send(w, &Msg::Shutdown);
    }
    let mut net = NetStats::default();
    for conn in &coord.conns {
        net.merge(conn.stats());
    }
    Ok(DistOutcome {
        partitioning: result?,
        net,
        workers,
    })
}

/// Monolith-parity check for the vertex-id cap: the monolith fails when
/// its table hint exceeds the (clamped) cap, before streaming an edge.
fn check_cap(n_hint: u64, limit: u64, what: &str) -> Result<()> {
    let cap = limit.min(DEFAULT_MAX_VERTICES);
    if n_hint > cap {
        return Err(cap_error(what, n_hint, cap));
    }
    Ok(())
}

fn drive(
    coord: &mut Coord,
    algo: &DistAlgo,
    input: DistInput<'_>,
    k: u32,
    chunk_edges: usize,
) -> Result<Partitioning> {
    let workers = coord.conns.len() as u32;
    // Same validation order as the monolith: config first, then k, then
    // algorithm-specific parameter checks, then the table-cap check.
    if let DistAlgo::Clugp(cfg) = algo {
        cfg.validate()?;
    }
    if k == 0 {
        return Err(PartitionError::InvalidParam("k must be at least 1".into()));
    }
    if let DistAlgo::Mint(cfg) = algo {
        if cfg.batch_size == 0 {
            return Err(PartitionError::InvalidParam(
                "batch_size must be positive".into(),
            ));
        }
    }

    let (n_hint, m_hint, inputs) = match input {
        DistInput::Edges {
            num_vertices,
            edges,
        } => {
            let specs: Vec<InputSpec> = split_ranges(edges.len() as u64, workers)
                .into_iter()
                .map(|(s, e)| InputSpec::Inline {
                    edges: edges[s as usize..e as usize].to_vec(),
                })
                .collect();
            (num_vertices, edges.len() as u64, specs)
        }
        DistInput::Pack(path) => {
            let (n, m) = {
                let reader = ShardedPackReader::open(path)?;
                (reader.header().num_vertices, reader.header().num_edges)
            };
            (n, m, pack_input_specs(path, workers)?)
        }
    };

    match algo {
        DistAlgo::Dbh { max_vertices, .. } => {
            check_cap(n_hint, *max_vertices, "num_vertices hint")?
        }
        DistAlgo::Greedy { max_vertices } => check_cap(n_hint, *max_vertices, "num_vertices")?,
        DistAlgo::Hdrf(cfg) => check_cap(n_hint, cfg.max_vertices, "num_vertices hint")?,
        DistAlgo::Clugp(cfg) => check_cap(n_hint, cfg.max_vertices, "num_vertices hint")?,
        _ => {}
    }

    let vrange = Layout::range_for(n_hint, workers);
    let striped = Layout::Striped {
        stripe: DEFAULT_STRIPE,
    };
    let replica_width = ((k as usize).div_ceil(64).max(1)) as u32;
    let tables: Vec<TableDef> = match algo {
        DistAlgo::Hashing { .. } | DistAlgo::Grid { .. } | DistAlgo::Mint(_) => Vec::new(),
        DistAlgo::Dbh { .. } => vec![TableDef {
            layout: vrange,
            width: 1,
        }],
        DistAlgo::Greedy { .. } => vec![TableDef {
            layout: vrange,
            width: replica_width,
        }],
        DistAlgo::Hdrf(_) => vec![
            TableDef {
                layout: vrange,
                width: replica_width,
            },
            TableDef {
                layout: vrange,
                width: 1,
            },
        ],
        DistAlgo::Clugp(_) => vec![
            TableDef {
                layout: vrange,
                width: 3,
            },
            TableDef {
                layout: striped,
                width: 1,
            },
            TableDef {
                layout: striped,
                width: 1,
            },
        ],
    };

    let algo_spec = match algo {
        DistAlgo::Hashing { seed } => AlgoSpec::Hashing { seed: *seed },
        DistAlgo::Grid { seed } => AlgoSpec::Grid { seed: *seed },
        DistAlgo::Dbh { seed, max_vertices } => AlgoSpec::Dbh {
            seed: *seed,
            max_vertices: *max_vertices,
        },
        DistAlgo::Greedy { max_vertices } => AlgoSpec::Greedy {
            max_vertices: *max_vertices,
        },
        DistAlgo::Hdrf(cfg) => AlgoSpec::Hdrf {
            lambda: cfg.lambda,
            epsilon: cfg.epsilon,
            max_vertices: cfg.max_vertices,
        },
        DistAlgo::Mint(cfg) => AlgoSpec::Mint {
            batch: cfg.batch_size as u64,
            wave: cfg.wave_width as u64,
            threads: cfg.threads as u64,
            rounds: cfg.max_rounds as u64,
            alpha: cfg.balance_weight,
            seed: cfg.seed,
        },
        DistAlgo::Clugp(cfg) => AlgoSpec::Clugp {
            splitting: cfg.splitting,
            migration: migration_tag(cfg.migration),
            max_vertices: cfg.max_vertices,
        },
    };

    for (w, input) in inputs.into_iter().enumerate() {
        let setup = WorkerSetup {
            worker: w as u32,
            workers,
            k,
            chunk: chunk_edges.min(u32::MAX as usize) as u32,
            algo: algo_spec.clone(),
            input,
            tables: tables.clone(),
        };
        coord.send(w, &Msg::Configure(Box::new(setup)))?;
    }
    for w in 0..workers as usize {
        match coord.recv(w)? {
            Msg::ConfigureOk => {}
            other => return Err(unexpected(&other)),
        }
    }

    if let DistAlgo::Clugp(cfg) = algo {
        return clugp_flow(coord, cfg, &tables, n_hint, m_hint, k, workers);
    }

    let token0 = Token {
        loads: vec![0; k as usize],
        ..Default::default()
    };
    let mut assignments = Vec::new();
    let token = coord.run_stage(Stage::Baseline, token0, &mut assignments, None)?;
    let num_vertices = match algo {
        DistAlgo::Dbh { .. } | DistAlgo::Greedy { .. } | DistAlgo::Hdrf(_) => {
            n_hint.max(token.table_len)
        }
        _ => n_hint,
    };
    Ok(Partitioning {
        k,
        num_vertices,
        assignments,
        loads: token.loads,
    })
}

/// The CLUGP three-pass flow: pass 1 streams clustering through the
/// sharded vertex/volume tables; the coordinator then compacts clusters
/// (recomputing dense volumes from degrees), republishes dense rows,
/// collects the sharded cluster-graph partials, solves the game, pushes
/// the cluster→partition map, and runs the transformation pass.
fn clugp_flow(
    coord: &mut Coord,
    cfg: &ClugpConfig,
    tables: &[TableDef],
    n_hint: u64,
    m_hint: u64,
    k: u32,
    workers: u32,
) -> Result<Partitioning> {
    // Pass 1 (same hint rule as the monolith: no length hint disables
    // splitting by an effectively infinite vmax).
    let vmax = if m_hint > 0 {
        cfg.vmax(m_hint, k)
    } else {
        u64::MAX
    };
    let mut no_assign = Vec::new();
    let token = coord.run_stage(
        Stage::ClugpPass1 { vmax },
        Token::default(),
        &mut no_assign,
        None,
    )?;

    // Assemble the authoritative vertex state from every shard.
    let mut cluster_of: VertexTable<u32> =
        VertexTable::with_limit(n_hint, NO_CLUSTER, cfg.max_vertices)?;
    let mut degree: VertexTable<u32> = VertexTable::with_limit(n_hint, 0, cfg.max_vertices)?;
    let mut divided: VertexTable<bool> = VertexTable::with_limit(n_hint, false, cfg.max_vertices)?;
    for w in 0..workers as usize {
        let (keys, rows) = coord.scan(w, T_MAIN)?;
        for (i, &key) in keys.iter().enumerate() {
            let v = key as u32;
            cluster_of.ensure(v)?;
            degree.ensure(v)?;
            divided.ensure(v)?;
            let w0 = rows[3 * i];
            cluster_of[v] = if w0 == 0 { NO_CLUSTER } else { (w0 - 1) as u32 };
            degree[v] = rows[3 * i + 1] as u32;
            divided[v] = rows[3 * i + 2] != 0;
        }
    }
    // Exact edge count, independent of the hint (each edge added 2).
    let m_real: u64 = degree.iter().map(|&d| u64::from(d)).sum::<u64>() / 2;

    // Pass 2a prelude: dense cluster ids (volumes recomputed from degrees,
    // so the raw volume table is no longer needed).
    let (num_clusters, _volumes) =
        compact_clusters(&mut cluster_of, &degree, token.next_raw as usize);

    // Republish dense width-3 rows for every vertex so passes 2b/3 see
    // dense ids wherever they fetch from.
    let vlayout = tables[0].layout;
    let mut by_owner: Vec<(Vec<u64>, Vec<u64>)> = vec![(Vec::new(), Vec::new()); workers as usize];
    for v in 0..cluster_of.len() {
        let owner = vlayout.owner(v, workers) as usize;
        let vid = v as u32;
        let c = cluster_of[vid];
        by_owner[owner].0.push(v);
        by_owner[owner]
            .1
            .push(if c == NO_CLUSTER { 0 } else { u64::from(c) + 1 });
        by_owner[owner].1.push(u64::from(degree[vid]));
        by_owner[owner].1.push(u64::from(divided[vid]));
    }
    for (owner, (keys, rows)) in by_owner.into_iter().enumerate() {
        if keys.is_empty() {
            continue;
        }
        coord.state_req(
            owner,
            T_MAIN,
            StateOp::Upsert {
                merge: MergeOp::Put,
                keys,
                rows,
            },
        )?;
    }

    // Pass 2a: the cluster graph, from per-worker partials merged in
    // worker (= stream) order.
    let mut pairs: Vec<PairsPayload> = Vec::new();
    coord.run_stage(
        Stage::ClugpPairs {
            num_clusters: u64::from(num_clusters),
        },
        Token::default(),
        &mut no_assign,
        Some(&mut pairs),
    )?;
    let mut intra = vec![0u64; num_clusters as usize];
    let mut agg: Vec<(u64, u32)> = Vec::new();
    for part in &pairs {
        for &(c, w) in &part.intra {
            intra[c as usize] += w;
        }
        agg = merge_weighted(&agg, &part.agg);
    }
    let cg = ClusterGraph::from_parts(num_clusters, intra, &agg);

    // Pass 2b: cluster → partition.
    let cluster_partition = match cfg.assign_mode {
        ClusterAssignMode::Game => solve_game(&cg, k, cfg)?.partition_of,
        ClusterAssignMode::Greedy => greedy_assign::greedy_assign(&cg, k),
    };
    let claylout = tables[T_CPART as usize].layout;
    let mut by_owner: Vec<(Vec<u64>, Vec<u64>)> = vec![(Vec::new(), Vec::new()); workers as usize];
    for (c, &p) in cluster_partition.iter().enumerate() {
        let owner = claylout.owner(c as u64, workers) as usize;
        by_owner[owner].0.push(c as u64);
        by_owner[owner].1.push(u64::from(p));
    }
    for (owner, (keys, rows)) in by_owner.into_iter().enumerate() {
        if keys.is_empty() {
            continue;
        }
        coord.state_req(
            owner,
            T_CPART,
            StateOp::Upsert {
                merge: MergeOp::Put,
                keys,
                rows,
            },
        )?;
    }

    // Pass 3: partition transformation under the balance cap.
    let lmax = load_cap(cfg.tau, m_real, k);
    let mut assignments = Vec::new();
    let token = coord.run_stage(
        Stage::ClugpTransform { lmax },
        Token {
            loads: vec![0; k as usize],
            ..Default::default()
        },
        &mut assignments,
        None,
    )?;
    Ok(Partitioning {
        k,
        num_vertices: n_hint.max(cluster_of.len()),
        assignments,
        loads: token.loads,
    })
}
