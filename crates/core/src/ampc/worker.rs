//! The worker half of the coordinator/worker engine.
//!
//! A worker owns one contiguous range of the edge stream and a
//! [`StateShard`] per table. After `Configure` it sits in a serve loop:
//! it answers `StateReq`/`Scan` against its local shards, and on
//! `RunStage` it streams its edge range through *the same per-edge
//! kernels the monolithic partitioners use*, which is what keeps every
//! distributed configuration bit-identical to the monolith.
//!
//! Remote state is handled per chunk: the worker collects the distinct
//! keys a chunk touches, fetches the authoritative rows from the owning
//! shards (one delta-encoded [`Msg::RouteBatch`] per owner, relayed
//! through the coordinator), overwrites its dense scratch tables, runs
//! the kernel over the chunk, and writes the touched rows back
//! (fire-and-forget `Put` batches — frame ordering through the
//! coordinator's star links guarantees they land before any later
//! dependent read). Scratch entries outside the fetched set are never
//! read, so the scratch tables can stay full-size and dense — same
//! types, same indexing as the monolith.
//!
//! In [`AmpcMode::Relaxed`] there is no per-chunk routing at all: every
//! worker streams its whole range against worker-local tables and
//! reconciles with the fleet at epoch barriers ([`Msg::EpochDone`] /
//! [`Msg::EpochSync`]), or — for the CLUGP stages — against read-only
//! [`Msg::TableCast`] mirrors, shipping a locally-clustered
//! [`Msg::Pass1Frontier`] for the coordinator to merge.

use super::proto::{
    AlgoSpec, BatchOp, EpochTable, InputSpec, Msg, PairsPayload, Stage, StateOp, Token, WorkerSetup,
};
use super::table::{Layout, MergeOp, StateShard};
use super::transport::Transport;
use super::{AmpcMode, DEFAULT_EPOCH_CHUNKS};
use crate::baselines::mint::{self, MintConfig, DEFAULT_WAVE_WIDTH};
use crate::baselines::{dbh, greedy, grid, hashing, hdrf};
use crate::clugp::cluster_graph::PairSink;
use crate::clugp::clustering::{pass1_edge, NO_CLUSTER};
use crate::clugp::config::MigrationPolicy;
use crate::clugp::transform::transform_edge;
use crate::error::{PartitionError, Result};
use crate::state::{PartitionLoads, ReplicaTable};
use crate::vertex_table::VertexTable;
use clugp_graph::pack::ShardedPackReader;
use clugp_graph::stream::{chunk_edges, EdgeStream};
use clugp_graph::types::Edge;
use clugp_obs::{self as obs, Event, EventBuf};
use rustc_hash::FxHashMap;
use std::path::Path;
use std::time::{Duration, Instant};

/// Table slot 0: the algorithm's main per-vertex table (degree for DBH,
/// replica rows for Greedy/HDRF, the packed vertex state for CLUGP).
pub(crate) const T_MAIN: u8 = 0;
/// Table slot 1 for HDRF: partial degrees.
pub(crate) const T_DEGREE: u8 = 1;
/// Table slot 1 for CLUGP: raw-cluster volumes (pass 1 only).
pub(crate) const T_VOL: u8 = 1;
/// Table slot 2 for CLUGP: dense cluster → partition.
pub(crate) const T_CPART: u8 = 2;

pub(crate) fn unexpected(m: &Msg) -> PartitionError {
    PartitionError::InvalidParam(format!("unexpected protocol message: {}", m.kind()))
}

pub(crate) fn migration_from_tag(tag: u8) -> Result<MigrationPolicy> {
    Ok(match tag {
        0 => MigrationPolicy::Anchored,
        1 => MigrationPolicy::Headroom,
        2 => MigrationPolicy::Paper,
        other => {
            return Err(PartitionError::InvalidParam(format!(
                "unknown migration policy tag {other}"
            )))
        }
    })
}

pub(crate) fn migration_tag(policy: MigrationPolicy) -> u8 {
    match policy {
        MigrationPolicy::Anchored => 0,
        MigrationPolicy::Headroom => 1,
        MigrationPolicy::Paper => 2,
    }
}

/// Worker-lane span name for a stage (coordinator-lane pass spans use the
/// `pass:` prefix; the worker's view of the same work uses `stage:`).
fn stage_name(stage: &Stage) -> &'static str {
    match stage {
        Stage::Baseline => "stage:baseline",
        Stage::ClugpPass1 { .. } => "stage:pass1",
        Stage::ClugpPairs { .. } => "stage:pairs",
        Stage::ClugpTransform { .. } => "stage:transform",
    }
}

fn recv(conn: &mut dyn Transport) -> Result<Msg> {
    Msg::decode(&conn.recv()?)
}

/// Runs a worker over `conn` until `Shutdown`.
///
/// The worker expects `Configure` first, acks it, then serves state
/// requests and stages on demand. A fatal stage error is reported to the
/// coordinator as [`Msg::Err`] before the function returns it.
pub fn run_worker(mut conn: Box<dyn Transport>) -> Result<()> {
    let setup = match recv(conn.as_mut())? {
        Msg::Configure(setup) => *setup,
        Msg::Shutdown => return Ok(()),
        other => return Err(unexpected(&other)),
    };
    let shards = build_shards(&setup);
    let hb_interval =
        (setup.heartbeat_ms > 0).then(|| Duration::from_millis(u64::from(setup.heartbeat_ms)));
    let mut wk = Wk {
        conn,
        setup,
        shards,
        hb_interval,
        hb_last: Instant::now(),
        scratch: Vec::new(),
        casts: FxHashMap::default(),
        obs: EventBuf::new(),
        chunk_ts: 0,
        chunk_edges: 0,
    };
    wk.send_msg(&Msg::ConfigureOk)?;
    loop {
        match recv(wk.conn.as_mut())? {
            Msg::StateReq { table, op } => {
                let rows = wk.apply_local(table, &op)?;
                wk.send_msg(&Msg::StateResp { rows })?;
            }
            Msg::StateReqBatch { keys, ops } => {
                if let Some(rows) = wk.serve_batch(&keys, &ops)? {
                    wk.send_msg(&Msg::StateRespBatch { rows })?;
                }
            }
            Msg::Scan { table } => {
                let (keys, rows) = wk.scan_local(table)?;
                wk.send_msg(&Msg::ScanResp { keys, rows })?;
            }
            Msg::TableCast { table, keys, rows } => {
                // Read-only mirror for the next relaxed stage; no ack
                // (ordered links deliver it before the RunStage behind it).
                wk.casts.insert(table, (keys, rows));
            }
            Msg::ResetTables => {
                // Recovery: drop every shard and rebuild empty; the
                // coordinator restores checkpointed rows right after.
                wk.shards = build_shards(&wk.setup);
                wk.casts.clear();
                wk.send_msg(&Msg::ResetOk)?;
            }
            Msg::RunStage {
                stage,
                token,
                mode,
                epoch,
            } => match wk.run_stage(stage, token, mode, epoch) {
                Ok((token, assignments, pairs)) => wk.send_msg(&Msg::StageDone {
                    token,
                    assignments,
                    pairs,
                })?,
                Err(e) => {
                    let _ = wk.send_msg(&Msg::Err { msg: e.to_string() });
                    return Err(e);
                }
            },
            Msg::Shutdown => return Ok(()),
            other => return Err(unexpected(&other)),
        }
    }
}

/// Builds the (empty) per-table shards `setup` describes.
fn build_shards(setup: &WorkerSetup) -> Vec<StateShard> {
    setup
        .tables
        .iter()
        .map(|t| match t.layout {
            Layout::Range { .. } => {
                StateShard::range(t.layout.base(setup.worker), t.width as usize)
            }
            Layout::Striped { .. } => StateShard::striped(t.width as usize),
        })
        .collect()
}

/// Output of one stage run: updated token, assignments in stream order,
/// and the CLUGP pairs partial (pairs stage only).
type StageOut = (Token, Vec<u32>, Option<PairsPayload>);

/// The worker's edge range, reopened for every stage.
enum Source {
    Inline {
        edges: Vec<Edge>,
        pos: usize,
    },
    Pack(clugp_graph::pack::PackedEdgeStream),
    /// Same block range as `Pack`, decoded ahead of the stage on pipeline
    /// workers (selected by the process-wide
    /// [`clugp_graph::pack::decode_options`]). Chunk-for-chunk identical
    /// to the serial variant, so stages cannot tell them apart.
    PipelinedPack(clugp_graph::pack::PipelinedPackStream),
}

impl Source {
    fn next_chunk(&mut self, buf: &mut Vec<Edge>, cap: usize) -> usize {
        match self {
            Source::Inline { edges, pos } => {
                buf.clear();
                let take = cap.max(1).min(edges.len() - *pos);
                buf.extend_from_slice(&edges[*pos..*pos + take]);
                *pos += take;
                take
            }
            Source::Pack(stream) => stream.next_chunk(buf, cap),
            Source::PipelinedPack(stream) => stream.next_chunk(buf, cap),
        }
    }

    /// A decode/IO error parked by a pack-backed stream, if any. Inline
    /// sources cannot fail.
    fn pack_error(&self) -> Option<&clugp_graph::error::GraphError> {
        match self {
            Source::Inline { .. } => None,
            Source::Pack(stream) => stream.error(),
            Source::PipelinedPack(stream) => stream.error(),
        }
    }
}

struct Wk {
    conn: Box<dyn Transport>,
    setup: WorkerSetup,
    shards: Vec<StateShard>,
    /// Keep-alive interval (None = heartbeats off).
    hb_interval: Option<Duration>,
    /// When the last heartbeat (or any stage start) was sent.
    hb_last: Instant,
    /// Reused encode buffer for every outgoing frame.
    scratch: Vec<u8>,
    /// Read-only table mirrors received via [`Msg::TableCast`] (relaxed
    /// CLUGP stages), keyed by table slot: `(keys, flattened rows)`.
    casts: FxHashMap<u8, (Vec<u64>, Vec<u64>)>,
    /// Trace events recorded during the current stage, shipped to the
    /// coordinator as one [`Msg::TraceEvents`] frame right before
    /// `StageDone` (empty unless [`WorkerSetup::trace`]).
    obs: EventBuf,
    /// Start timestamp of the chunk currently being processed (µs on this
    /// worker's clock); 0 = no chunk open.
    chunk_ts: u64,
    /// Edge count of the chunk currently being processed.
    chunk_edges: u64,
}

impl Wk {
    /// Encodes and sends `msg`, reusing the worker's scratch buffer so
    /// hot-path sends (routing, heartbeats, epoch frames) do not allocate.
    fn send_msg(&mut self, msg: &Msg) -> Result<()> {
        let mut buf = std::mem::take(&mut self.scratch);
        msg.encode_into(&mut buf);
        let res = self.conn.send(&buf);
        self.scratch = buf;
        res
    }

    /// Pulls the next chunk of the stage's edge range, first emitting a
    /// keep-alive [`Msg::Heartbeat`] when the configured interval has
    /// elapsed — without it, a stateless kernel (e.g. hashing) sends
    /// nothing for the whole stage and the coordinator's deadline could
    /// not tell "working" from "dead".
    fn next_chunk(
        &mut self,
        source: &mut Source,
        buf: &mut Vec<Edge>,
        cap: usize,
    ) -> Result<usize> {
        if let Some(interval) = self.hb_interval {
            if self.hb_last.elapsed() >= interval {
                self.send_msg(&Msg::Heartbeat)?;
                self.hb_last = Instant::now();
            }
        }
        if self.setup.trace && self.chunk_ts != 0 {
            // Close the previous chunk's span here, before blocking on the
            // next decode — stall time is attributed separately.
            self.obs
                .push(Event::span_since("chunk", self.chunk_ts, self.chunk_edges));
            self.chunk_ts = 0;
        }
        let n = source.next_chunk(buf, cap);
        if self.setup.trace && n != 0 {
            self.chunk_ts = obs::now_us();
            self.chunk_edges = n as u64;
        }
        Ok(n)
    }

    fn slot(&self, table: u8) -> Result<usize> {
        let i = table as usize;
        if i >= self.shards.len() {
            return Err(PartitionError::InvalidParam(format!(
                "unknown table slot {table}"
            )));
        }
        Ok(i)
    }

    /// Executes a state op against the local shard of `table`.
    fn apply_local(&mut self, table: u8, op: &StateOp) -> Result<Vec<u64>> {
        let i = self.slot(table)?;
        let shard = &mut self.shards[i];
        match op {
            StateOp::Get { keys } => {
                let mut out = Vec::with_capacity(keys.len() * shard.width());
                for &key in keys {
                    shard.get_into(key, &mut out);
                }
                Ok(out)
            }
            StateOp::Upsert { merge, keys, rows } => {
                if rows.len() != keys.len() * shard.width() {
                    return Err(PartitionError::InvalidParam(
                        "upsert row payload does not match key count".into(),
                    ));
                }
                shard.upsert_batch(*merge, keys, rows);
                Ok(Vec::new())
            }
        }
    }

    fn scan_local(&mut self, table: u8) -> Result<(Vec<u64>, Vec<u64>)> {
        let i = self.slot(table)?;
        let mut keys = Vec::new();
        let mut rows = Vec::new();
        self.shards[i].scan(|key, row| {
            keys.push(key);
            rows.extend_from_slice(row);
        });
        Ok((keys, rows))
    }

    /// Executes a batch of ops (each over the same `keys`) against the
    /// local shards. Returns the concatenated `Get` results, or `None`
    /// when the batch was pure `Put`s and there is nothing to reply.
    fn serve_batch(&mut self, keys: &[u64], ops: &[BatchOp]) -> Result<Option<Vec<u64>>> {
        let mut reply: Option<Vec<u64>> = None;
        for op in ops {
            match op {
                BatchOp::Get { table } => {
                    let i = self.slot(*table)?;
                    let shard = &mut self.shards[i];
                    let out = reply.get_or_insert_with(Vec::new);
                    out.reserve(keys.len() * shard.width());
                    for &key in keys {
                        shard.get_into(key, out);
                    }
                }
                BatchOp::Put { table, merge, vals } => {
                    let i = self.slot(*table)?;
                    let shard = &mut self.shards[i];
                    if vals.len() != keys.len() * shard.width() {
                        return Err(PartitionError::InvalidParam(
                            "batched put payload does not match key count".into(),
                        ));
                    }
                    shard.upsert_batch(*merge, keys, vals);
                }
            }
        }
        Ok(reply)
    }

    /// Fetches `keys` from every table in `tables` (all sharing one
    /// layout), returning one flattened row vector per table, in key
    /// order. Remote owners are serviced with a single delta-encoded
    /// [`Msg::RouteBatch`] each; all requests go out before the first
    /// reply is awaited, so the relay legs overlap.
    fn fetch_group(&mut self, tables: &[u8], keys: &[u64]) -> Result<Vec<Vec<u64>>> {
        let t_route = if self.setup.trace { obs::now_us() } else { 0 };
        let defs: Vec<_> = tables
            .iter()
            .map(|&t| self.slot(t).map(|i| self.setup.tables[i]))
            .collect::<Result<_>>()?;
        let layout = defs[0].layout;
        debug_assert!(defs.iter().all(|d| d.layout == layout));
        let workers = self.setup.workers;
        let mut outs: Vec<Vec<u64>> = defs
            .iter()
            .map(|d| vec![0u64; keys.len() * d.width as usize])
            .collect();
        let mut by_owner: Vec<(Vec<u64>, Vec<usize>)> =
            vec![(Vec::new(), Vec::new()); workers as usize];
        for (i, &key) in keys.iter().enumerate() {
            let owner = layout.owner(key, workers) as usize;
            by_owner[owner].0.push(key);
            by_owner[owner].1.push(i);
        }
        let me = self.setup.worker as usize;
        // Fire every remote request first, then collect replies in the
        // same order — the coordinator answers per-owner in send order.
        let mut pending: Vec<usize> = Vec::new();
        for (owner, (okeys, _)) in by_owner.iter().enumerate() {
            if owner == me || okeys.is_empty() {
                continue;
            }
            let ops: Vec<BatchOp> = tables.iter().map(|&t| BatchOp::Get { table: t }).collect();
            self.send_msg(&Msg::RouteBatch {
                to: owner as u32,
                keys: okeys.clone(),
                ops,
            })?;
            pending.push(owner);
        }
        let scatter = |owner: usize, rows: &[u64], outs: &mut [Vec<u64>]| -> Result<()> {
            let (okeys, opos) = &by_owner[owner];
            let total: usize = defs.iter().map(|d| okeys.len() * d.width as usize).sum();
            if rows.len() != total {
                return Err(PartitionError::InvalidParam(
                    "batched fetch reply does not match request".into(),
                ));
            }
            let mut off = 0;
            for (t, d) in defs.iter().enumerate() {
                let width = d.width as usize;
                for (j, &pos) in opos.iter().enumerate() {
                    outs[t][pos * width..(pos + 1) * width]
                        .copy_from_slice(&rows[off + j * width..off + (j + 1) * width]);
                }
                off += okeys.len() * width;
            }
            Ok(())
        };
        if !by_owner[me].0.is_empty() {
            let okeys = by_owner[me].0.clone();
            let ops: Vec<BatchOp> = tables.iter().map(|&t| BatchOp::Get { table: t }).collect();
            let rows = self
                .serve_batch(&okeys, &ops)?
                .expect("get batch always yields rows");
            scatter(me, &rows, &mut outs)?;
        }
        let had_remote = !pending.is_empty();
        for owner in pending {
            match recv(self.conn.as_mut())? {
                Msg::RouteReply { rows } => scatter(owner, &rows, &mut outs)?,
                Msg::Err { msg } => return Err(PartitionError::InvalidParam(msg)),
                other => return Err(unexpected(&other)),
            }
        }
        if self.setup.trace && had_remote {
            // One span per chunk fetch that actually crossed the wire.
            self.obs
                .push(Event::span_since("route_batch", t_route, keys.len() as u64));
        }
        Ok(outs)
    }

    /// Fetches `keys` from `table`, returning rows flattened in key order.
    fn fetch(&mut self, table: u8, keys: &[u64]) -> Result<Vec<u64>> {
        Ok(self
            .fetch_group(&[table], keys)?
            .pop()
            .expect("fetch_group returns one vector per table"))
    }

    /// Writes rows for `keys` back to one or more tables (all sharing one
    /// layout) with a single fire-and-forget [`Msg::RouteBatch`] per
    /// remote owner. No acks: the frames traverse the coordinator's
    /// ordered star links, so each Put is applied at its owner before any
    /// later dependent read from this worker can arrive there.
    fn publish_group(&mut self, keys: &[u64], puts: &[(u8, MergeOp, &[u64])]) -> Result<()> {
        let defs: Vec<_> = puts
            .iter()
            .map(|&(t, _, _)| self.slot(t).map(|i| self.setup.tables[i]))
            .collect::<Result<_>>()?;
        let layout = defs[0].layout;
        debug_assert!(defs.iter().all(|d| d.layout == layout));
        let workers = self.setup.workers;
        let mut by_owner: Vec<(Vec<u64>, Vec<usize>)> =
            vec![(Vec::new(), Vec::new()); workers as usize];
        for (i, &key) in keys.iter().enumerate() {
            let owner = layout.owner(key, workers) as usize;
            by_owner[owner].0.push(key);
            by_owner[owner].1.push(i);
        }
        let me = self.setup.worker as usize;
        for (owner, (okeys, opos)) in by_owner.into_iter().enumerate() {
            if okeys.is_empty() {
                continue;
            }
            let ops: Vec<BatchOp> = puts
                .iter()
                .zip(&defs)
                .map(|(&(table, merge, rows), d)| {
                    let width = d.width as usize;
                    let mut vals = Vec::with_capacity(okeys.len() * width);
                    for &pos in &opos {
                        vals.extend_from_slice(&rows[pos * width..(pos + 1) * width]);
                    }
                    BatchOp::Put { table, merge, vals }
                })
                .collect();
            if owner == me {
                self.serve_batch(&okeys, &ops)?;
            } else {
                self.send_msg(&Msg::RouteBatch {
                    to: owner as u32,
                    keys: okeys,
                    ops,
                })?;
            }
        }
        Ok(())
    }

    /// Writes `keys.len()` flattened rows back to `table` under `merge`.
    fn publish(&mut self, table: u8, merge: MergeOp, keys: &[u64], rows: &[u64]) -> Result<()> {
        self.publish_group(keys, &[(table, merge, rows)])
    }

    fn chunk_cap(&self) -> usize {
        if self.setup.chunk == 0 {
            chunk_edges()
        } else {
            self.setup.chunk as usize
        }
    }

    fn open_source(&mut self) -> Result<Source> {
        let input = std::mem::replace(
            &mut self.setup.input,
            InputSpec::Inline { edges: Vec::new() },
        );
        match input {
            InputSpec::Inline { edges } => Ok(Source::Inline { edges, pos: 0 }),
            InputSpec::Pack {
                path,
                block_start,
                block_end,
                edges,
            } => {
                let opts = clugp_graph::pack::decode_options();
                let reader = ShardedPackReader::open_with(Path::new(&path), opts.checksums)?;
                let range = block_start as usize..block_end as usize;
                let source = if opts.threads > 0 {
                    Source::PipelinedPack(reader.open_pipelined_block_range(range, opts)?)
                } else {
                    Source::Pack(reader.open_block_range(range)?)
                };
                self.setup.input = InputSpec::Pack {
                    path,
                    block_start,
                    block_end,
                    edges,
                };
                Ok(source)
            }
        }
    }

    fn restore_source(&mut self, source: Source) {
        if let Source::Inline { edges, .. } = source {
            self.setup.input = InputSpec::Inline { edges };
        }
    }

    fn run_stage(
        &mut self,
        stage: Stage,
        token: Token,
        mode: AmpcMode,
        epoch: u32,
    ) -> Result<StageOut> {
        let relaxed = mode == AmpcMode::Relaxed;
        let epoch = if epoch == 0 {
            DEFAULT_EPOCH_CHUNKS
        } else {
            epoch
        } as usize;
        // Discard decode-stall time accrued outside any stage (pipeline
        // warm-up from a previous incarnation of the source).
        let _ = obs::stall::take_thread_ns();
        self.chunk_ts = 0;
        self.chunk_edges = 0;
        let t_stage = if self.setup.trace { obs::now_us() } else { 0 };
        let mut source = self.open_source()?;
        let mut out = match stage {
            Stage::Baseline => self.stage_baseline(token, &mut source, relaxed, epoch),
            Stage::ClugpPass1 { vmax } => {
                if relaxed {
                    self.stage_clugp_pass1_relaxed(vmax, token, &mut source)
                } else {
                    self.stage_clugp_pass1(vmax, token, &mut source)
                }
            }
            Stage::ClugpPairs { num_clusters } => {
                if relaxed {
                    self.stage_clugp_pairs_relaxed(num_clusters, token, &mut source)
                } else {
                    self.stage_clugp_pairs(num_clusters, token, &mut source)
                }
            }
            Stage::ClugpTransform { lmax } => {
                if relaxed {
                    self.stage_clugp_transform_relaxed(lmax, token, &mut source)
                } else {
                    self.stage_clugp_transform(lmax, token, &mut source)
                }
            }
        };
        if out.is_ok() {
            if let Some(e) = source.pack_error() {
                out = Err(PartitionError::InvalidParam(format!("pack stream: {e}")));
            }
        }
        self.restore_source(source);
        // Casts are per-stage: the coordinator re-broadcasts fresh mirrors
        // before every relaxed stage that needs them.
        self.casts.clear();
        if self.setup.trace && out.is_ok() {
            // The condvar wait in the pipelined pack stream runs on this
            // thread, so the thread-local stall counter is exactly this
            // stage's decode wait.
            let stall_ns = obs::stall::take_thread_ns();
            if stall_ns > 0 {
                self.obs
                    .push(Event::instant_now("decode_stall", stall_ns / 1_000));
            }
            self.obs
                .push(Event::span_since(stage_name(&stage), t_stage, 0));
            self.flush_trace()?;
        }
        out
    }

    /// Ships every event buffered during the stage as one
    /// [`Msg::TraceEvents`] frame. Sent right before `StageDone`, so the
    /// coordinator absorbs it while waiting on the stage result.
    fn flush_trace(&mut self) -> Result<()> {
        let dropped = self.obs.take_dropped();
        if self.obs.is_empty() && dropped == 0 {
            return Ok(());
        }
        let events = self.obs.drain();
        self.send_msg(&Msg::TraceEvents {
            now_us: obs::now_us(),
            dropped,
            events,
        })
    }

    fn stage_baseline(
        &mut self,
        token: Token,
        source: &mut Source,
        relaxed: bool,
        epoch: usize,
    ) -> Result<StageOut> {
        let algo = self.setup.algo.clone();
        let (token, assignments) = match algo {
            // Hashing is stateless: the relaxed run is the sequenced run.
            AlgoSpec::Hashing { seed } => self.run_hashing(seed, token, source)?,
            AlgoSpec::Grid { seed } => {
                if relaxed {
                    self.run_grid_relaxed(seed, token, source, epoch)?
                } else {
                    self.run_grid(seed, token, source)?
                }
            }
            AlgoSpec::Dbh { seed, max_vertices } => {
                if relaxed {
                    self.run_dbh_relaxed(seed, max_vertices, token, source, epoch)?
                } else {
                    self.run_dbh(seed, max_vertices, token, source)?
                }
            }
            AlgoSpec::Greedy { max_vertices } => {
                if relaxed {
                    self.run_greedy_relaxed(max_vertices, token, source, epoch)?
                } else {
                    self.run_greedy(max_vertices, token, source)?
                }
            }
            AlgoSpec::Hdrf {
                lambda,
                epsilon,
                max_vertices,
            } => {
                if relaxed {
                    self.run_hdrf_relaxed(lambda, epsilon, max_vertices, token, source, epoch)?
                } else {
                    self.run_hdrf(lambda, epsilon, max_vertices, token, source)?
                }
            }
            AlgoSpec::Mint {
                batch,
                wave,
                threads,
                rounds,
                alpha,
                seed,
            } => {
                let cfg = MintConfig {
                    batch_size: batch as usize,
                    wave_width: wave as usize,
                    threads: threads as usize,
                    max_rounds: rounds as usize,
                    balance_weight: alpha,
                    seed,
                };
                self.run_mint(&cfg, token, source, relaxed)?
            }
            AlgoSpec::Clugp { .. } => {
                return Err(PartitionError::InvalidParam(
                    "CLUGP algo cannot run the baseline stage".into(),
                ))
            }
        };
        Ok((token, assignments, None))
    }

    fn run_hashing(
        &mut self,
        seed: u64,
        mut token: Token,
        source: &mut Source,
    ) -> Result<(Token, Vec<u32>)> {
        let k = self.setup.k;
        let cap = self.chunk_cap();
        let mut buf = Vec::with_capacity(cap);
        let mut assignments = Vec::new();
        while self.next_chunk(source, &mut buf, cap)? != 0 {
            for &e in &buf {
                let p = hashing::hashing_assign(e, seed, k);
                token.loads[p as usize] += 1;
                assignments.push(p);
            }
        }
        Ok((token, assignments))
    }

    fn run_grid(
        &mut self,
        seed: u64,
        mut token: Token,
        source: &mut Source,
    ) -> Result<(Token, Vec<u32>)> {
        let k = self.setup.k;
        let r = grid::grid_dim(k);
        let cap = self.chunk_cap();
        let mut buf = Vec::with_capacity(cap);
        let mut assignments = Vec::new();
        let mut loads = PartitionLoads::from_vec(std::mem::take(&mut token.loads));
        let mut cs_u = Vec::with_capacity(2 * r as usize);
        let mut cs_v = Vec::with_capacity(2 * r as usize);
        while self.next_chunk(source, &mut buf, cap)? != 0 {
            for &e in &buf {
                let p = grid::grid_edge(e, seed, r, k, &loads, &mut cs_u, &mut cs_v);
                assignments.push(p);
                loads.add(p);
            }
        }
        token.loads = loads.into_vec();
        Ok((token, assignments))
    }

    fn run_dbh(
        &mut self,
        seed: u64,
        max_vertices: u64,
        mut token: Token,
        source: &mut Source,
    ) -> Result<(Token, Vec<u32>)> {
        let k = self.setup.k;
        let cap = self.chunk_cap();
        let mut buf = Vec::with_capacity(cap);
        let mut assignments = Vec::new();
        let mut degree: VertexTable<u32> = VertexTable::with_limit(0, 0, max_vertices)?;
        let mut keys: Vec<u64> = Vec::new();
        while self.next_chunk(source, &mut buf, cap)? != 0 {
            distinct_endpoints(&buf, &mut keys);
            let rows = self.fetch(T_MAIN, &keys)?;
            for (i, &key) in keys.iter().enumerate() {
                let v = key as u32;
                degree.ensure(v)?;
                degree[v] = rows[i] as u32;
            }
            for &e in &buf {
                let p = dbh::dbh_edge(e, seed, k, &mut degree)?;
                token.loads[p as usize] += 1;
                assignments.push(p);
            }
            let back: Vec<u64> = keys
                .iter()
                .map(|&key| u64::from(degree[key as u32]))
                .collect();
            self.publish(T_MAIN, MergeOp::Put, &keys, &back)?;
        }
        token.table_len = token.table_len.max(degree.len());
        Ok((token, assignments))
    }

    fn run_greedy(
        &mut self,
        max_vertices: u64,
        mut token: Token,
        source: &mut Source,
    ) -> Result<(Token, Vec<u32>)> {
        let k = self.setup.k;
        let cap = self.chunk_cap();
        let mut buf = Vec::with_capacity(cap);
        let mut assignments = Vec::new();
        let mut replicas = ReplicaTable::with_limit(0, k, max_vertices)?;
        let wr = replicas.words_per_row();
        let mut loads = PartitionLoads::from_vec(std::mem::take(&mut token.loads));
        let mut keys: Vec<u64> = Vec::new();
        while self.next_chunk(source, &mut buf, cap)? != 0 {
            distinct_endpoints(&buf, &mut keys);
            let rows = self.fetch(T_MAIN, &keys)?;
            for (i, &key) in keys.iter().enumerate() {
                replicas.ensure_vertices(key + 1)?;
                replicas.import_row(key as u32, &rows[i * wr..(i + 1) * wr]);
            }
            for &e in &buf {
                let p = greedy::greedy_edge(e, &mut replicas, &mut loads)?;
                assignments.push(p);
            }
            let mut back = vec![0u64; keys.len() * wr];
            for (i, &key) in keys.iter().enumerate() {
                replicas.export_row(key as u32, &mut back[i * wr..(i + 1) * wr]);
            }
            self.publish(T_MAIN, MergeOp::Put, &keys, &back)?;
        }
        token.loads = loads.into_vec();
        token.table_len = token.table_len.max(replicas.num_vertices());
        Ok((token, assignments))
    }

    fn run_hdrf(
        &mut self,
        lambda: f64,
        epsilon: f64,
        max_vertices: u64,
        mut token: Token,
        source: &mut Source,
    ) -> Result<(Token, Vec<u32>)> {
        let k = self.setup.k;
        let cap = self.chunk_cap();
        let mut buf = Vec::with_capacity(cap);
        let mut assignments = Vec::new();
        let mut degree: VertexTable<u32> = VertexTable::with_limit(0, 0, max_vertices)?;
        let mut replicas = ReplicaTable::with_limit(0, k, max_vertices)?;
        let wr = replicas.words_per_row();
        let mut loads = PartitionLoads::from_vec(std::mem::take(&mut token.loads));
        let mut keys: Vec<u64> = Vec::new();
        while self.next_chunk(source, &mut buf, cap)? != 0 {
            distinct_endpoints(&buf, &mut keys);
            let mut fetched = self.fetch_group(&[T_MAIN, T_DEGREE], &keys)?;
            let drows = fetched.pop().expect("two tables fetched");
            let rrows = fetched.pop().expect("two tables fetched");
            for (i, &key) in keys.iter().enumerate() {
                let v = key as u32;
                replicas.ensure_vertices(key + 1)?;
                replicas.import_row(v, &rrows[i * wr..(i + 1) * wr]);
                degree.ensure(v)?;
                degree[v] = drows[i] as u32;
            }
            for &e in &buf {
                let p = hdrf::hdrf_edge(
                    e,
                    lambda,
                    epsilon,
                    k,
                    &mut degree,
                    &mut replicas,
                    &mut loads,
                )?;
                assignments.push(p);
            }
            let mut back = vec![0u64; keys.len() * wr];
            for (i, &key) in keys.iter().enumerate() {
                replicas.export_row(key as u32, &mut back[i * wr..(i + 1) * wr]);
            }
            let dback: Vec<u64> = keys
                .iter()
                .map(|&key| u64::from(degree[key as u32]))
                .collect();
            self.publish_group(
                &keys,
                &[
                    (T_MAIN, MergeOp::Put, &back),
                    (T_DEGREE, MergeOp::Put, &dback),
                ],
            )?;
        }
        token.loads = loads.into_vec();
        token.table_len = token.table_len.max(replicas.num_vertices());
        Ok((token, assignments))
    }

    /// Mint: waves are global — `wave_width × batch_size` edges each — so
    /// every worker solves the full waves its range completes and carries
    /// the remainder to the next worker in the token. The last worker
    /// drains the tail (partial wave / partial batch), exactly where the
    /// monolith's end-of-stream wave lands. In relaxed mode there is no
    /// token to carry a remainder on, so every worker waves over its own
    /// range and drains its own tail.
    fn run_mint(
        &mut self,
        cfg: &MintConfig,
        mut token: Token,
        source: &mut Source,
        relaxed: bool,
    ) -> Result<(Token, Vec<u32>)> {
        let k = self.setup.k;
        let wave_width = if cfg.wave_width == 0 {
            DEFAULT_WAVE_WIDTH
        } else {
            cfg.wave_width
        };
        if cfg.batch_size == 0 {
            return Err(PartitionError::InvalidParam(
                "batch_size must be positive".into(),
            ));
        }
        let wave_edges = wave_width * cfg.batch_size;
        let pool = mint::build_pool(cfg.threads)?;
        let cap = self.chunk_cap();
        let mut buf = Vec::with_capacity(cap);
        let mut assignments = Vec::new();
        let mut loads = PartitionLoads::from_vec(std::mem::take(&mut token.loads));
        let mut pending = std::mem::take(&mut token.carry);
        let commit =
            |pending_wave: &[Edge], loads: &mut PartitionLoads, assignments: &mut Vec<u32>| {
                let wave: Vec<Vec<Edge>> = pending_wave
                    .chunks(cfg.batch_size)
                    .map(<[Edge]>::to_vec)
                    .collect();
                let snapshot: Vec<u64> = loads.as_slice().to_vec();
                let outcomes = mint::solve_wave(&wave, k, &snapshot, cfg, pool.as_ref());
                for outcome in outcomes {
                    for &p in &outcome.assignments {
                        loads.add(p);
                    }
                    assignments.extend(outcome.assignments);
                }
            };
        while self.next_chunk(source, &mut buf, cap)? != 0 {
            pending.extend_from_slice(&buf);
            while pending.len() >= wave_edges {
                let rest = pending.split_off(wave_edges);
                commit(&pending, &mut loads, &mut assignments);
                pending = rest;
            }
        }
        let last = relaxed || self.setup.worker + 1 == self.setup.workers;
        if last {
            if !pending.is_empty() {
                commit(&pending, &mut loads, &mut assignments);
            }
            pending = Vec::new();
        }
        token.carry = pending;
        token.loads = loads.into_vec();
        Ok((token, assignments))
    }

    /// One relaxed-mode epoch barrier: ship this worker's deltas, block
    /// until the coordinator broadcasts the merged committed state for the
    /// round. Every worker contributes exactly one [`Msg::EpochDone`] per
    /// round, so the committed state after round `r` is independent of
    /// thread scheduling — that is what keeps relaxed runs deterministic.
    fn epoch_exchange(
        &mut self,
        last: bool,
        loads: Vec<u64>,
        tables: Vec<EpochTable>,
    ) -> Result<(bool, Vec<u64>, Vec<EpochTable>)> {
        let t_barrier = if self.setup.trace { obs::now_us() } else { 0 };
        self.send_msg(&Msg::EpochDone {
            last,
            loads,
            tables,
        })?;
        match recv(self.conn.as_mut())? {
            Msg::EpochSync {
                done,
                loads,
                tables,
            } => {
                if self.setup.trace {
                    self.obs
                        .push(Event::span_since("epoch:barrier", t_barrier, 0));
                }
                Ok((done, loads, tables))
            }
            Msg::Err { msg } => Err(PartitionError::InvalidParam(msg)),
            other => Err(unexpected(&other)),
        }
    }

    /// Final relaxed-mode barrier sequence: ship the last deltas, then
    /// keep answering rounds with empty deltas until every worker has
    /// reported `last`. Returns the final committed loads.
    fn epoch_drain(
        &mut self,
        loads: Vec<u64>,
        tables: Vec<EpochTable>,
        mut apply: impl FnMut(&EpochTable) -> Result<()>,
    ) -> Result<Vec<u64>> {
        let k = loads.len();
        let (mut done, mut committed, merged) = self.epoch_exchange(true, loads, tables)?;
        for t in &merged {
            apply(t)?;
        }
        while !done {
            let (d, l, merged) = self.epoch_exchange(true, vec![0; k], Vec::new())?;
            done = d;
            committed = l;
            for t in &merged {
                apply(t)?;
            }
        }
        Ok(committed)
    }

    /// Relaxed Grid: stream the whole range locally, reconciling the load
    /// vector (the only shared state Grid reads) at epoch barriers.
    fn run_grid_relaxed(
        &mut self,
        seed: u64,
        mut token: Token,
        source: &mut Source,
        epoch: usize,
    ) -> Result<(Token, Vec<u32>)> {
        let k = self.setup.k;
        let r = grid::grid_dim(k);
        let cap = self.chunk_cap();
        let mut buf = Vec::with_capacity(cap);
        let mut assignments = Vec::new();
        let mut loads = PartitionLoads::from_vec(std::mem::take(&mut token.loads));
        let mut base = loads.as_slice().to_vec();
        let mut cs_u = Vec::with_capacity(2 * r as usize);
        let mut cs_v = Vec::with_capacity(2 * r as usize);
        let mut since = 0usize;
        while self.next_chunk(source, &mut buf, cap)? != 0 {
            for &e in &buf {
                let p = grid::grid_edge(e, seed, r, k, &loads, &mut cs_u, &mut cs_v);
                assignments.push(p);
                loads.add(p);
            }
            since += 1;
            if since >= epoch {
                since = 0;
                let delta = loads_delta(loads.as_slice(), &base);
                let (_, merged, _) = self.epoch_exchange(false, delta, Vec::new())?;
                base.clone_from(&merged);
                loads = PartitionLoads::from_vec(merged);
            }
        }
        let delta = loads_delta(loads.as_slice(), &base);
        token.loads = self.epoch_drain(delta, Vec::new(), |_| Ok(()))?;
        Ok((token, assignments))
    }

    /// Relaxed DBH: partial degrees are commutative sums, so each epoch
    /// ships `degree - baseline` deltas under [`MergeOp::Add`] and adopts
    /// the committed totals the coordinator broadcasts back.
    fn run_dbh_relaxed(
        &mut self,
        seed: u64,
        max_vertices: u64,
        mut token: Token,
        source: &mut Source,
        epoch: usize,
    ) -> Result<(Token, Vec<u32>)> {
        let k = self.setup.k;
        let cap = self.chunk_cap();
        let mut buf = Vec::with_capacity(cap);
        let mut assignments = Vec::new();
        let mut degree: VertexTable<u32> = VertexTable::with_limit(0, 0, max_vertices)?;
        let mut loads = std::mem::take(&mut token.loads);
        let mut base = loads.clone();
        let mut baseline: FxHashMap<u64, u32> = FxHashMap::default();
        let mut keys: Vec<u64> = Vec::new();
        let mut since = 0usize;
        let flush = |baseline: &mut FxHashMap<u64, u32>, degree: &VertexTable<u32>| {
            let mut keys: Vec<u64> = baseline.keys().copied().collect();
            keys.sort_unstable();
            let rows: Vec<u64> = keys
                .iter()
                .map(|&key| u64::from(degree[key as u32].wrapping_sub(baseline[&key])))
                .collect();
            baseline.clear();
            vec![EpochTable {
                table: T_MAIN,
                merge: MergeOp::Add,
                keys,
                rows,
            }]
        };
        while self.next_chunk(source, &mut buf, cap)? != 0 {
            distinct_endpoints(&buf, &mut keys);
            for &key in &keys {
                let v = key as u32;
                degree.ensure(v)?;
                baseline.entry(key).or_insert(degree[v]);
            }
            for &e in &buf {
                let p = dbh::dbh_edge(e, seed, k, &mut degree)?;
                loads[p as usize] += 1;
                assignments.push(p);
            }
            since += 1;
            if since >= epoch {
                since = 0;
                let tables = flush(&mut baseline, &degree);
                let delta = loads_delta(&loads, &base);
                let (_, merged, mtabs) = self.epoch_exchange(false, delta, tables)?;
                base.clone_from(&merged);
                loads = merged;
                for t in &mtabs {
                    apply_degree_sync(&mut degree, t)?;
                }
            }
        }
        let tables = flush(&mut baseline, &degree);
        let delta = loads_delta(&loads, &base);
        token.loads = self.epoch_drain(delta, tables, |t| apply_degree_sync(&mut degree, t))?;
        token.table_len = token.table_len.max(degree.len());
        Ok((token, assignments))
    }

    /// Relaxed Greedy: replica masks are monotone under OR, so each epoch
    /// ships the current full rows of every vertex touched since the last
    /// barrier under [`MergeOp::BitOr`] (idempotent — no baseline needed)
    /// plus load deltas, and adopts the committed union.
    fn run_greedy_relaxed(
        &mut self,
        max_vertices: u64,
        mut token: Token,
        source: &mut Source,
        epoch: usize,
    ) -> Result<(Token, Vec<u32>)> {
        let k = self.setup.k;
        let cap = self.chunk_cap();
        let mut buf = Vec::with_capacity(cap);
        let mut assignments = Vec::new();
        let mut replicas = ReplicaTable::with_limit(0, k, max_vertices)?;
        let wr = replicas.words_per_row();
        let mut loads = PartitionLoads::from_vec(std::mem::take(&mut token.loads));
        let mut base = loads.as_slice().to_vec();
        let mut touched: Vec<u64> = Vec::new();
        let mut keys: Vec<u64> = Vec::new();
        let mut since = 0usize;
        let flush = |touched: &mut Vec<u64>, replicas: &ReplicaTable| {
            touched.sort_unstable();
            touched.dedup();
            let mut rows = vec![0u64; touched.len() * wr];
            for (i, &key) in touched.iter().enumerate() {
                replicas.export_row(key as u32, &mut rows[i * wr..(i + 1) * wr]);
            }
            let keys = std::mem::take(touched);
            vec![EpochTable {
                table: T_MAIN,
                merge: MergeOp::BitOr,
                keys,
                rows,
            }]
        };
        while self.next_chunk(source, &mut buf, cap)? != 0 {
            distinct_endpoints(&buf, &mut keys);
            for &key in &keys {
                replicas.ensure_vertices(key + 1)?;
            }
            touched.extend_from_slice(&keys);
            for &e in &buf {
                let p = greedy::greedy_edge(e, &mut replicas, &mut loads)?;
                assignments.push(p);
            }
            since += 1;
            if since >= epoch {
                since = 0;
                let tables = flush(&mut touched, &replicas);
                let delta = loads_delta(loads.as_slice(), &base);
                let (_, merged, mtabs) = self.epoch_exchange(false, delta, tables)?;
                base.clone_from(&merged);
                loads = PartitionLoads::from_vec(merged);
                for t in &mtabs {
                    apply_mask_sync(&mut replicas, t)?;
                }
            }
        }
        let tables = flush(&mut touched, &replicas);
        let delta = loads_delta(loads.as_slice(), &base);
        token.loads = self.epoch_drain(delta, tables, |t| apply_mask_sync(&mut replicas, t))?;
        token.table_len = token.table_len.max(replicas.num_vertices());
        Ok((token, assignments))
    }

    /// Relaxed HDRF: combines the Greedy mask union (T_MAIN, BitOr) with
    /// the DBH degree sums (T_DEGREE, Add) — one touched-key set serves
    /// both tables — plus load deltas for the balance term.
    fn run_hdrf_relaxed(
        &mut self,
        lambda: f64,
        epsilon: f64,
        max_vertices: u64,
        mut token: Token,
        source: &mut Source,
        epoch: usize,
    ) -> Result<(Token, Vec<u32>)> {
        let k = self.setup.k;
        let cap = self.chunk_cap();
        let mut buf = Vec::with_capacity(cap);
        let mut assignments = Vec::new();
        let mut degree: VertexTable<u32> = VertexTable::with_limit(0, 0, max_vertices)?;
        let mut replicas = ReplicaTable::with_limit(0, k, max_vertices)?;
        let wr = replicas.words_per_row();
        let mut loads = PartitionLoads::from_vec(std::mem::take(&mut token.loads));
        let mut base = loads.as_slice().to_vec();
        let mut baseline: FxHashMap<u64, u32> = FxHashMap::default();
        let mut keys: Vec<u64> = Vec::new();
        let mut since = 0usize;
        let flush = |baseline: &mut FxHashMap<u64, u32>,
                     degree: &VertexTable<u32>,
                     replicas: &ReplicaTable| {
            let mut keys: Vec<u64> = baseline.keys().copied().collect();
            keys.sort_unstable();
            let mut mask_rows = vec![0u64; keys.len() * wr];
            let mut deg_rows = Vec::with_capacity(keys.len());
            for (i, &key) in keys.iter().enumerate() {
                replicas.export_row(key as u32, &mut mask_rows[i * wr..(i + 1) * wr]);
                deg_rows.push(u64::from(degree[key as u32].wrapping_sub(baseline[&key])));
            }
            baseline.clear();
            vec![
                EpochTable {
                    table: T_MAIN,
                    merge: MergeOp::BitOr,
                    keys: keys.clone(),
                    rows: mask_rows,
                },
                EpochTable {
                    table: T_DEGREE,
                    merge: MergeOp::Add,
                    keys,
                    rows: deg_rows,
                },
            ]
        };
        let apply = |degree: &mut VertexTable<u32>,
                     replicas: &mut ReplicaTable,
                     t: &EpochTable|
         -> Result<()> {
            match t.table {
                T_MAIN => apply_mask_sync(replicas, t),
                T_DEGREE => apply_degree_sync(degree, t),
                other => Err(PartitionError::InvalidParam(format!(
                    "epoch sync for unknown table slot {other}"
                ))),
            }
        };
        while self.next_chunk(source, &mut buf, cap)? != 0 {
            distinct_endpoints(&buf, &mut keys);
            for &key in &keys {
                let v = key as u32;
                replicas.ensure_vertices(key + 1)?;
                degree.ensure(v)?;
                baseline.entry(key).or_insert(degree[v]);
            }
            for &e in &buf {
                let p = hdrf::hdrf_edge(
                    e,
                    lambda,
                    epsilon,
                    k,
                    &mut degree,
                    &mut replicas,
                    &mut loads,
                )?;
                assignments.push(p);
            }
            since += 1;
            if since >= epoch {
                since = 0;
                let tables = flush(&mut baseline, &degree, &replicas);
                let delta = loads_delta(loads.as_slice(), &base);
                let (_, merged, mtabs) = self.epoch_exchange(false, delta, tables)?;
                base.clone_from(&merged);
                loads = PartitionLoads::from_vec(merged);
                for t in &mtabs {
                    apply(&mut degree, &mut replicas, t)?;
                }
            }
        }
        let tables = flush(&mut baseline, &degree, &replicas);
        let delta = loads_delta(loads.as_slice(), &base);
        token.loads = self.epoch_drain(delta, tables, |t| apply(&mut degree, &mut replicas, t))?;
        token.table_len = token.table_len.max(replicas.num_vertices());
        Ok((token, assignments))
    }

    /// CLUGP pass 1. The raw-volume scratch is kept at the full global
    /// length (the token's raw-id watermark) so `vol.push` allocates the
    /// same raw ids as the monolith. Per chunk, the touched-cluster set is
    /// closed under the kernel's operations: every volume it reads or
    /// writes belongs to a fetched chunk vertex's cluster or to a cluster
    /// created in the chunk.
    fn stage_clugp_pass1(
        &mut self,
        vmax: u64,
        mut token: Token,
        source: &mut Source,
    ) -> Result<StageOut> {
        let AlgoSpec::Clugp {
            splitting,
            migration,
            max_vertices,
        } = self.setup.algo
        else {
            return Err(PartitionError::InvalidParam(
                "pass-1 stage requires the CLUGP algo".into(),
            ));
        };
        let migration = migration_from_tag(migration)?;
        let cap = self.chunk_cap();
        let mut buf = Vec::with_capacity(cap);
        let mut cluster_of: VertexTable<u32> =
            VertexTable::with_limit(0, NO_CLUSTER, max_vertices)?;
        let mut degree: VertexTable<u32> = VertexTable::with_limit(0, 0, max_vertices)?;
        let mut divided: VertexTable<bool> = VertexTable::with_limit(0, false, max_vertices)?;
        let mut vol: Vec<u64> = vec![0; token.next_raw as usize];
        let mut splits = token.splits;
        let mut migrations = token.migrations;
        let mut vkeys: Vec<u64> = Vec::new();
        while self.next_chunk(source, &mut buf, cap)? != 0 {
            distinct_endpoints(&buf, &mut vkeys);
            let rows = self.fetch(T_MAIN, &vkeys)?;
            for (i, &key) in vkeys.iter().enumerate() {
                let v = key as u32;
                cluster_of.ensure(v)?;
                degree.ensure(v)?;
                divided.ensure(v)?;
                let w0 = rows[3 * i];
                cluster_of[v] = if w0 == 0 { NO_CLUSTER } else { (w0 - 1) as u32 };
                degree[v] = rows[3 * i + 1] as u32;
                divided[v] = rows[3 * i + 2] != 0;
            }
            let mut ckeys: Vec<u64> = vkeys
                .iter()
                .filter_map(|&key| {
                    let c = cluster_of[key as u32];
                    (c != NO_CLUSTER).then_some(u64::from(c))
                })
                .collect();
            ckeys.sort_unstable();
            ckeys.dedup();
            let crows = self.fetch(T_VOL, &ckeys)?;
            for (i, &ck) in ckeys.iter().enumerate() {
                vol[ck as usize] = crows[i];
            }
            let created_from = vol.len();
            for &e in &buf {
                pass1_edge(
                    e,
                    vmax,
                    splitting,
                    migration,
                    &mut cluster_of,
                    &mut degree,
                    &mut divided,
                    &mut vol,
                    &mut splits,
                    &mut migrations,
                )?;
            }
            let mut vrows = Vec::with_capacity(vkeys.len() * 3);
            for &key in &vkeys {
                let v = key as u32;
                let c = cluster_of[v];
                vrows.push(if c == NO_CLUSTER { 0 } else { u64::from(c) + 1 });
                vrows.push(u64::from(degree[v]));
                vrows.push(u64::from(divided[v]));
            }
            self.publish(T_MAIN, MergeOp::Put, &vkeys, &vrows)?;
            let mut wkeys = ckeys;
            wkeys.extend((created_from..vol.len()).map(|c| c as u64));
            let wrows: Vec<u64> = wkeys.iter().map(|&c| vol[c as usize]).collect();
            self.publish(T_VOL, MergeOp::Put, &wkeys, &wrows)?;
        }
        token.next_raw = vol.len() as u64;
        token.splits = splits;
        token.migrations = migrations;
        token.table_len = token.table_len.max(cluster_of.len());
        Ok((token, Vec::new(), None))
    }

    /// CLUGP pairs: stream the range once against the (now dense) cluster
    /// ids and aggregate the worker's partial cluster graph.
    fn stage_clugp_pairs(
        &mut self,
        num_clusters: u64,
        token: Token,
        source: &mut Source,
    ) -> Result<StageOut> {
        let AlgoSpec::Clugp { max_vertices, .. } = self.setup.algo else {
            return Err(PartitionError::InvalidParam(
                "pairs stage requires the CLUGP algo".into(),
            ));
        };
        let cap = self.chunk_cap();
        let mut buf = Vec::with_capacity(cap);
        let mut cluster_of: VertexTable<u32> =
            VertexTable::with_limit(0, NO_CLUSTER, max_vertices)?;
        let mut sink = PairSink::new(num_clusters as usize);
        let mut vkeys: Vec<u64> = Vec::new();
        while self.next_chunk(source, &mut buf, cap)? != 0 {
            distinct_endpoints(&buf, &mut vkeys);
            let rows = self.fetch(T_MAIN, &vkeys)?;
            for (i, &key) in vkeys.iter().enumerate() {
                let v = key as u32;
                cluster_of.ensure(v)?;
                let w0 = rows[3 * i];
                cluster_of[v] = if w0 == 0 { NO_CLUSTER } else { (w0 - 1) as u32 };
            }
            for &e in &buf {
                sink.push(cluster_of[e.src], cluster_of[e.dst]);
            }
        }
        let (intra, agg) = sink.finish();
        let pairs = PairsPayload {
            intra: intra
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(i, &c)| (i as u64, c))
                .collect(),
            agg,
        };
        Ok((token, Vec::new(), Some(pairs)))
    }

    /// CLUGP pass 3: per chunk, fetch the dense vertex rows plus the
    /// cluster→partition entries those vertices reference, then run the
    /// transformation kernel. No writebacks — the pass only consumes state.
    fn stage_clugp_transform(
        &mut self,
        lmax: u64,
        mut token: Token,
        source: &mut Source,
    ) -> Result<StageOut> {
        let AlgoSpec::Clugp { max_vertices, .. } = self.setup.algo else {
            return Err(PartitionError::InvalidParam(
                "transform stage requires the CLUGP algo".into(),
            ));
        };
        let k = self.setup.k;
        let cap = self.chunk_cap();
        let mut buf = Vec::with_capacity(cap);
        let mut assignments = Vec::new();
        let mut cluster_of: VertexTable<u32> =
            VertexTable::with_limit(0, NO_CLUSTER, max_vertices)?;
        let mut degree: VertexTable<u32> = VertexTable::with_limit(0, 0, max_vertices)?;
        let mut divided: VertexTable<bool> = VertexTable::with_limit(0, false, max_vertices)?;
        let mut cpart: Vec<u32> = Vec::new();
        let mut loads = std::mem::take(&mut token.loads);
        let mut cursor = token.cursor;
        let mut reroutes = token.reroutes;
        let mut vkeys: Vec<u64> = Vec::new();
        while self.next_chunk(source, &mut buf, cap)? != 0 {
            distinct_endpoints(&buf, &mut vkeys);
            let rows = self.fetch(T_MAIN, &vkeys)?;
            for (i, &key) in vkeys.iter().enumerate() {
                let v = key as u32;
                cluster_of.ensure(v)?;
                degree.ensure(v)?;
                divided.ensure(v)?;
                let w0 = rows[3 * i];
                cluster_of[v] = if w0 == 0 { NO_CLUSTER } else { (w0 - 1) as u32 };
                degree[v] = rows[3 * i + 1] as u32;
                divided[v] = rows[3 * i + 2] != 0;
            }
            let mut ckeys: Vec<u64> = vkeys
                .iter()
                .filter_map(|&key| {
                    let c = cluster_of[key as u32];
                    (c != NO_CLUSTER).then_some(u64::from(c))
                })
                .collect();
            ckeys.sort_unstable();
            ckeys.dedup();
            let crows = self.fetch(T_CPART, &ckeys)?;
            for (i, &ck) in ckeys.iter().enumerate() {
                if ck as usize >= cpart.len() {
                    cpart.resize(ck as usize + 1, 0);
                }
                cpart[ck as usize] = crows[i] as u32;
            }
            for &e in &buf {
                let p = transform_edge(
                    e,
                    &cluster_of,
                    &degree,
                    &divided,
                    &cpart,
                    lmax,
                    k,
                    &mut loads,
                    &mut cursor,
                    &mut reroutes,
                );
                assignments.push(p);
            }
        }
        token.loads = loads;
        token.cursor = cursor;
        token.reroutes = reroutes;
        token.table_len = token.table_len.max(cluster_of.len());
        Ok((token, assignments, None))
    }

    /// Relaxed CLUGP pass 1: cluster the worker's range entirely locally
    /// (raw cluster ids are worker-local, volumes start from zero), then
    /// ship the whole frontier — per-vertex rows plus the local volume
    /// array — as one [`Msg::Pass1Frontier`] for the coordinator to merge
    /// deterministically across workers.
    fn stage_clugp_pass1_relaxed(
        &mut self,
        vmax: u64,
        mut token: Token,
        source: &mut Source,
    ) -> Result<StageOut> {
        let AlgoSpec::Clugp {
            splitting,
            migration,
            max_vertices,
        } = self.setup.algo
        else {
            return Err(PartitionError::InvalidParam(
                "pass-1 stage requires the CLUGP algo".into(),
            ));
        };
        let migration = migration_from_tag(migration)?;
        let cap = self.chunk_cap();
        let mut buf = Vec::with_capacity(cap);
        let mut cluster_of: VertexTable<u32> =
            VertexTable::with_limit(0, NO_CLUSTER, max_vertices)?;
        let mut degree: VertexTable<u32> = VertexTable::with_limit(0, 0, max_vertices)?;
        let mut divided: VertexTable<bool> = VertexTable::with_limit(0, false, max_vertices)?;
        let mut vol: Vec<u64> = Vec::new();
        let mut splits = token.splits;
        let mut migrations = token.migrations;
        while self.next_chunk(source, &mut buf, cap)? != 0 {
            for &e in &buf {
                let m = e.src.max(e.dst);
                cluster_of.ensure(m)?;
                degree.ensure(m)?;
                divided.ensure(m)?;
            }
            for &e in &buf {
                pass1_edge(
                    e,
                    vmax,
                    splitting,
                    migration,
                    &mut cluster_of,
                    &mut degree,
                    &mut divided,
                    &mut vol,
                    &mut splits,
                    &mut migrations,
                )?;
            }
        }
        let mut keys = Vec::new();
        let mut rows = Vec::new();
        for key in 0..cluster_of.len() {
            let v = key as u32;
            let c = cluster_of[v];
            let d = degree[v];
            let dv = divided[v];
            if c == NO_CLUSTER && d == 0 && !dv {
                continue;
            }
            keys.push(key);
            rows.push(if c == NO_CLUSTER { 0 } else { u64::from(c) + 1 });
            rows.push(u64::from(d));
            rows.push(u64::from(dv));
        }
        token.next_raw = vol.len() as u64;
        token.splits = splits;
        token.migrations = migrations;
        token.table_len = token.table_len.max(cluster_of.len());
        self.send_msg(&Msg::Pass1Frontier { keys, rows, vol })?;
        Ok((token, Vec::new(), None))
    }

    /// Decodes the T_MAIN cast (width-3 vertex rows) the coordinator
    /// broadcast ahead of a relaxed CLUGP stage.
    fn cast_cluster_of(
        &mut self,
        max_vertices: u64,
    ) -> Result<(VertexTable<u32>, VertexTable<u32>, VertexTable<bool>)> {
        let Some((keys, rows)) = self.casts.remove(&T_MAIN) else {
            return Err(PartitionError::InvalidParam(
                "relaxed CLUGP stage started without a table cast".into(),
            ));
        };
        if rows.len() != keys.len() * 3 {
            return Err(PartitionError::InvalidParam(
                "table cast payload does not match key count".into(),
            ));
        }
        let mut cluster_of: VertexTable<u32> =
            VertexTable::with_limit(0, NO_CLUSTER, max_vertices)?;
        let mut degree: VertexTable<u32> = VertexTable::with_limit(0, 0, max_vertices)?;
        let mut divided: VertexTable<bool> = VertexTable::with_limit(0, false, max_vertices)?;
        for (i, &key) in keys.iter().enumerate() {
            let v = key as u32;
            cluster_of.ensure(v)?;
            degree.ensure(v)?;
            divided.ensure(v)?;
            let w0 = rows[3 * i];
            cluster_of[v] = if w0 == 0 { NO_CLUSTER } else { (w0 - 1) as u32 };
            degree[v] = rows[3 * i + 1] as u32;
            divided[v] = rows[3 * i + 2] != 0;
        }
        Ok((cluster_of, degree, divided))
    }

    /// Relaxed CLUGP pairs: the dense cluster ids arrive as a read-only
    /// cast before the stage, so the stream never routes at all.
    fn stage_clugp_pairs_relaxed(
        &mut self,
        num_clusters: u64,
        token: Token,
        source: &mut Source,
    ) -> Result<StageOut> {
        let AlgoSpec::Clugp { max_vertices, .. } = self.setup.algo else {
            return Err(PartitionError::InvalidParam(
                "pairs stage requires the CLUGP algo".into(),
            ));
        };
        let (mut cluster_of, _, _) = self.cast_cluster_of(max_vertices)?;
        let cap = self.chunk_cap();
        let mut buf = Vec::with_capacity(cap);
        let mut sink = PairSink::new(num_clusters as usize);
        while self.next_chunk(source, &mut buf, cap)? != 0 {
            for &e in &buf {
                cluster_of.ensure(e.src.max(e.dst))?;
                sink.push(cluster_of[e.src], cluster_of[e.dst]);
            }
        }
        let (intra, agg) = sink.finish();
        let pairs = PairsPayload {
            intra: intra
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(i, &c)| (i as u64, c))
                .collect(),
            agg,
        };
        Ok((token, Vec::new(), Some(pairs)))
    }

    /// Relaxed CLUGP pass 3: vertex rows and the cluster→partition map
    /// both arrive as casts; each worker enforces a proportional share of
    /// the global load cap so the summed loads respect it.
    fn stage_clugp_transform_relaxed(
        &mut self,
        lmax: u64,
        mut token: Token,
        source: &mut Source,
    ) -> Result<StageOut> {
        let AlgoSpec::Clugp { max_vertices, .. } = self.setup.algo else {
            return Err(PartitionError::InvalidParam(
                "transform stage requires the CLUGP algo".into(),
            ));
        };
        let k = self.setup.k;
        let (mut cluster_of, mut degree, mut divided) = self.cast_cluster_of(max_vertices)?;
        let Some((ckeys, crows)) = self.casts.remove(&T_CPART) else {
            return Err(PartitionError::InvalidParam(
                "relaxed transform stage started without a cluster-partition cast".into(),
            ));
        };
        if crows.len() != ckeys.len() {
            return Err(PartitionError::InvalidParam(
                "cluster-partition cast payload does not match key count".into(),
            ));
        }
        let mut cpart: Vec<u32> = Vec::new();
        for (i, &ck) in ckeys.iter().enumerate() {
            if ck as usize >= cpart.len() {
                cpart.resize(ck as usize + 1, 0);
            }
            cpart[ck as usize] = crows[i] as u32;
        }
        // Each worker gets an even slice of the global cap. The slice can be
        // infeasible for this worker's share of the stream (contiguous edge
        // ranges are not perfectly even), so the cap grows one slot per
        // partition whenever every local partition is saturated — the edge
        // always has somewhere to go, and the global cap drifts by at most
        // one slot per overflow. Sequenced mode keeps the hard cap.
        let mut lmax = lmax.div_ceil(u64::from(self.setup.workers)).max(1);
        let cap = self.chunk_cap();
        let mut buf = Vec::with_capacity(cap);
        let mut assignments = Vec::new();
        let mut loads = std::mem::take(&mut token.loads);
        let mut cursor = token.cursor;
        let mut reroutes = token.reroutes;
        let mut placed: u64 = loads.as_slice().iter().sum();
        while self.next_chunk(source, &mut buf, cap)? != 0 {
            for &e in &buf {
                let m = e.src.max(e.dst);
                cluster_of.ensure(m)?;
                degree.ensure(m)?;
                divided.ensure(m)?;
            }
            for &e in &buf {
                if placed == u64::from(k) * lmax {
                    lmax += 1;
                }
                placed += 1;
                let p = transform_edge(
                    e,
                    &cluster_of,
                    &degree,
                    &divided,
                    &cpart,
                    lmax,
                    k,
                    &mut loads,
                    &mut cursor,
                    &mut reroutes,
                );
                assignments.push(p);
            }
        }
        token.loads = loads;
        token.cursor = cursor;
        token.reroutes = reroutes;
        token.table_len = token.table_len.max(cluster_of.len());
        Ok((token, assignments, None))
    }
}

/// Collects the distinct endpoint ids of a chunk, sorted ascending.
fn distinct_endpoints(buf: &[Edge], keys: &mut Vec<u64>) {
    keys.clear();
    for e in buf {
        keys.push(u64::from(e.src));
        keys.push(u64::from(e.dst));
    }
    keys.sort_unstable();
    keys.dedup();
}

/// Element-wise wrapping difference `cur - base`: the per-epoch load
/// delta a relaxed worker ships at a barrier.
fn loads_delta(cur: &[u64], base: &[u64]) -> Vec<u64> {
    cur.iter()
        .zip(base)
        .map(|(&c, &b)| c.wrapping_sub(b))
        .collect()
}

/// Adopts committed width-1 degree totals from an epoch-sync frame.
fn apply_degree_sync(degree: &mut VertexTable<u32>, t: &EpochTable) -> Result<()> {
    if t.rows.len() != t.keys.len() {
        return Err(PartitionError::InvalidParam(
            "epoch sync payload does not match key count".into(),
        ));
    }
    for (i, &key) in t.keys.iter().enumerate() {
        let v = key as u32;
        degree.ensure(v)?;
        degree[v] = t.rows[i] as u32;
    }
    Ok(())
}

/// Adopts committed replica-mask rows from an epoch-sync frame. The
/// committed row is a superset of the local one (OR-merge of a set this
/// worker contributed to), so overwriting never loses local bits.
fn apply_mask_sync(replicas: &mut ReplicaTable, t: &EpochTable) -> Result<()> {
    let wr = replicas.words_per_row();
    if t.rows.len() != t.keys.len() * wr {
        return Err(PartitionError::InvalidParam(
            "epoch sync payload does not match key count".into(),
        ));
    }
    for (i, &key) in t.keys.iter().enumerate() {
        replicas.ensure_vertices(key + 1)?;
        replicas.import_row(key as u32, &t.rows[i * wr..(i + 1) * wr]);
    }
    Ok(())
}
