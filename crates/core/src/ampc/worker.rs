//! The worker half of the coordinator/worker engine.
//!
//! A worker owns one contiguous range of the edge stream and a
//! [`StateShard`] per table. After `Configure` it sits in a serve loop:
//! it answers `StateReq`/`Scan` against its local shards, and on
//! `RunStage` it streams its edge range through *the same per-edge
//! kernels the monolithic partitioners use*, which is what keeps every
//! distributed configuration bit-identical to the monolith.
//!
//! Remote state is handled per chunk: the worker collects the distinct
//! keys a chunk touches, fetches the authoritative rows from the owning
//! shards (batched `Get`s, relayed through the coordinator as `Route`),
//! overwrites its dense scratch tables, runs the kernel over the chunk,
//! and writes the touched rows back (batched `Put`s). Scratch entries
//! outside the fetched set are never read, so the scratch tables can stay
//! full-size and dense — same types, same indexing as the monolith.

use super::proto::{AlgoSpec, InputSpec, Msg, PairsPayload, Stage, StateOp, Token, WorkerSetup};
use super::table::{Layout, MergeOp, StateShard};
use super::transport::Transport;
use crate::baselines::mint::{self, MintConfig, DEFAULT_WAVE_WIDTH};
use crate::baselines::{dbh, greedy, grid, hashing, hdrf};
use crate::clugp::cluster_graph::PairSink;
use crate::clugp::clustering::{pass1_edge, NO_CLUSTER};
use crate::clugp::config::MigrationPolicy;
use crate::clugp::transform::transform_edge;
use crate::error::{PartitionError, Result};
use crate::state::{PartitionLoads, ReplicaTable};
use crate::vertex_table::VertexTable;
use clugp_graph::pack::ShardedPackReader;
use clugp_graph::stream::{chunk_edges, EdgeStream};
use clugp_graph::types::Edge;
use std::path::Path;
use std::time::{Duration, Instant};

/// Table slot 0: the algorithm's main per-vertex table (degree for DBH,
/// replica rows for Greedy/HDRF, the packed vertex state for CLUGP).
pub(crate) const T_MAIN: u8 = 0;
/// Table slot 1 for HDRF: partial degrees.
pub(crate) const T_DEGREE: u8 = 1;
/// Table slot 1 for CLUGP: raw-cluster volumes (pass 1 only).
pub(crate) const T_VOL: u8 = 1;
/// Table slot 2 for CLUGP: dense cluster → partition.
pub(crate) const T_CPART: u8 = 2;

pub(crate) fn unexpected(m: &Msg) -> PartitionError {
    PartitionError::InvalidParam(format!("unexpected protocol message: {}", m.kind()))
}

pub(crate) fn migration_from_tag(tag: u8) -> Result<MigrationPolicy> {
    Ok(match tag {
        0 => MigrationPolicy::Anchored,
        1 => MigrationPolicy::Headroom,
        2 => MigrationPolicy::Paper,
        other => {
            return Err(PartitionError::InvalidParam(format!(
                "unknown migration policy tag {other}"
            )))
        }
    })
}

pub(crate) fn migration_tag(policy: MigrationPolicy) -> u8 {
    match policy {
        MigrationPolicy::Anchored => 0,
        MigrationPolicy::Headroom => 1,
        MigrationPolicy::Paper => 2,
    }
}

fn send(conn: &mut dyn Transport, msg: &Msg) -> Result<()> {
    conn.send(&msg.encode())
}

fn recv(conn: &mut dyn Transport) -> Result<Msg> {
    Msg::decode(&conn.recv()?)
}

/// Runs a worker over `conn` until `Shutdown`.
///
/// The worker expects `Configure` first, acks it, then serves state
/// requests and stages on demand. A fatal stage error is reported to the
/// coordinator as [`Msg::Err`] before the function returns it.
pub fn run_worker(mut conn: Box<dyn Transport>) -> Result<()> {
    let setup = match recv(conn.as_mut())? {
        Msg::Configure(setup) => *setup,
        Msg::Shutdown => return Ok(()),
        other => return Err(unexpected(&other)),
    };
    let shards = build_shards(&setup);
    let hb_interval =
        (setup.heartbeat_ms > 0).then(|| Duration::from_millis(u64::from(setup.heartbeat_ms)));
    let mut wk = Wk {
        conn,
        setup,
        shards,
        hb_interval,
        hb_last: Instant::now(),
    };
    send(wk.conn.as_mut(), &Msg::ConfigureOk)?;
    loop {
        match recv(wk.conn.as_mut())? {
            Msg::StateReq { table, op } => {
                let rows = wk.apply_local(table, &op)?;
                send(wk.conn.as_mut(), &Msg::StateResp { rows })?;
            }
            Msg::Scan { table } => {
                let (keys, rows) = wk.scan_local(table)?;
                send(wk.conn.as_mut(), &Msg::ScanResp { keys, rows })?;
            }
            Msg::ResetTables => {
                // Recovery: drop every shard and rebuild empty; the
                // coordinator restores checkpointed rows right after.
                wk.shards = build_shards(&wk.setup);
                send(wk.conn.as_mut(), &Msg::ResetOk)?;
            }
            Msg::RunStage { stage, token } => match wk.run_stage(stage, token) {
                Ok((token, assignments, pairs)) => send(
                    wk.conn.as_mut(),
                    &Msg::StageDone {
                        token,
                        assignments,
                        pairs,
                    },
                )?,
                Err(e) => {
                    let _ = send(wk.conn.as_mut(), &Msg::Err { msg: e.to_string() });
                    return Err(e);
                }
            },
            Msg::Shutdown => return Ok(()),
            other => return Err(unexpected(&other)),
        }
    }
}

/// Builds the (empty) per-table shards `setup` describes.
fn build_shards(setup: &WorkerSetup) -> Vec<StateShard> {
    setup
        .tables
        .iter()
        .map(|t| match t.layout {
            Layout::Range { .. } => {
                StateShard::range(t.layout.base(setup.worker), t.width as usize)
            }
            Layout::Striped { .. } => StateShard::striped(t.width as usize),
        })
        .collect()
}

/// Output of one stage run: updated token, assignments in stream order,
/// and the CLUGP pairs partial (pairs stage only).
type StageOut = (Token, Vec<u32>, Option<PairsPayload>);

/// The worker's edge range, reopened for every stage.
enum Source {
    Inline {
        edges: Vec<Edge>,
        pos: usize,
    },
    Pack(clugp_graph::pack::PackedEdgeStream),
    /// Same block range as `Pack`, decoded ahead of the stage on pipeline
    /// workers (selected by the process-wide
    /// [`clugp_graph::pack::decode_options`]). Chunk-for-chunk identical
    /// to the serial variant, so stages cannot tell them apart.
    PipelinedPack(clugp_graph::pack::PipelinedPackStream),
}

impl Source {
    fn next_chunk(&mut self, buf: &mut Vec<Edge>, cap: usize) -> usize {
        match self {
            Source::Inline { edges, pos } => {
                buf.clear();
                let take = cap.max(1).min(edges.len() - *pos);
                buf.extend_from_slice(&edges[*pos..*pos + take]);
                *pos += take;
                take
            }
            Source::Pack(stream) => stream.next_chunk(buf, cap),
            Source::PipelinedPack(stream) => stream.next_chunk(buf, cap),
        }
    }

    /// A decode/IO error parked by a pack-backed stream, if any. Inline
    /// sources cannot fail.
    fn pack_error(&self) -> Option<&clugp_graph::error::GraphError> {
        match self {
            Source::Inline { .. } => None,
            Source::Pack(stream) => stream.error(),
            Source::PipelinedPack(stream) => stream.error(),
        }
    }
}

struct Wk {
    conn: Box<dyn Transport>,
    setup: WorkerSetup,
    shards: Vec<StateShard>,
    /// Keep-alive interval (None = heartbeats off).
    hb_interval: Option<Duration>,
    /// When the last heartbeat (or any stage start) was sent.
    hb_last: Instant,
}

impl Wk {
    /// Pulls the next chunk of the stage's edge range, first emitting a
    /// keep-alive [`Msg::Heartbeat`] when the configured interval has
    /// elapsed — without it, a stateless kernel (e.g. hashing) sends
    /// nothing for the whole stage and the coordinator's deadline could
    /// not tell "working" from "dead".
    fn next_chunk(
        &mut self,
        source: &mut Source,
        buf: &mut Vec<Edge>,
        cap: usize,
    ) -> Result<usize> {
        if let Some(interval) = self.hb_interval {
            if self.hb_last.elapsed() >= interval {
                send(self.conn.as_mut(), &Msg::Heartbeat)?;
                self.hb_last = Instant::now();
            }
        }
        Ok(source.next_chunk(buf, cap))
    }

    fn slot(&self, table: u8) -> Result<usize> {
        let i = table as usize;
        if i >= self.shards.len() {
            return Err(PartitionError::InvalidParam(format!(
                "unknown table slot {table}"
            )));
        }
        Ok(i)
    }

    /// Executes a state op against the local shard of `table`.
    fn apply_local(&mut self, table: u8, op: &StateOp) -> Result<Vec<u64>> {
        let i = self.slot(table)?;
        let shard = &mut self.shards[i];
        match op {
            StateOp::Get { keys } => {
                let mut out = Vec::with_capacity(keys.len() * shard.width());
                for &key in keys {
                    shard.get_into(key, &mut out);
                }
                Ok(out)
            }
            StateOp::Upsert { merge, keys, rows } => {
                if rows.len() != keys.len() * shard.width() {
                    return Err(PartitionError::InvalidParam(
                        "upsert row payload does not match key count".into(),
                    ));
                }
                shard.upsert_batch(*merge, keys, rows);
                Ok(Vec::new())
            }
        }
    }

    fn scan_local(&mut self, table: u8) -> Result<(Vec<u64>, Vec<u64>)> {
        let i = self.slot(table)?;
        let mut keys = Vec::new();
        let mut rows = Vec::new();
        self.shards[i].scan(|key, row| {
            keys.push(key);
            rows.extend_from_slice(row);
        });
        Ok((keys, rows))
    }

    /// Executes `op` against the worker owning it: locally when that is
    /// this worker, else via a coordinator-relayed `Route` (strict
    /// request/reply — one in flight at a time).
    fn routed(&mut self, table: u8, to: u32, op: StateOp) -> Result<Vec<u64>> {
        if to == self.setup.worker {
            return self.apply_local(table, &op);
        }
        send(self.conn.as_mut(), &Msg::Route { to, table, op })?;
        match recv(self.conn.as_mut())? {
            Msg::StateResp { rows } => Ok(rows),
            Msg::Err { msg } => Err(PartitionError::InvalidParam(msg)),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches `keys` from `table`, returning rows flattened in key order.
    fn fetch(&mut self, table: u8, keys: &[u64]) -> Result<Vec<u64>> {
        let def = self.setup.tables[self.slot(table)?];
        let width = def.width as usize;
        let workers = self.setup.workers;
        let mut out = vec![0u64; keys.len() * width];
        let mut by_owner: Vec<(Vec<u64>, Vec<usize>)> =
            vec![(Vec::new(), Vec::new()); workers as usize];
        for (i, &key) in keys.iter().enumerate() {
            let owner = def.layout.owner(key, workers) as usize;
            by_owner[owner].0.push(key);
            by_owner[owner].1.push(i);
        }
        for (owner, (okeys, opos)) in by_owner.into_iter().enumerate() {
            if okeys.is_empty() {
                continue;
            }
            let rows = self.routed(table, owner as u32, StateOp::Get { keys: okeys })?;
            for (j, &pos) in opos.iter().enumerate() {
                out[pos * width..(pos + 1) * width]
                    .copy_from_slice(&rows[j * width..(j + 1) * width]);
            }
        }
        Ok(out)
    }

    /// Writes `keys.len()` flattened rows back to `table` under `merge`.
    fn publish(&mut self, table: u8, merge: MergeOp, keys: &[u64], rows: &[u64]) -> Result<()> {
        let def = self.setup.tables[self.slot(table)?];
        let width = def.width as usize;
        let workers = self.setup.workers;
        let mut by_owner: Vec<(Vec<u64>, Vec<u64>)> =
            vec![(Vec::new(), Vec::new()); workers as usize];
        for (i, &key) in keys.iter().enumerate() {
            let owner = def.layout.owner(key, workers) as usize;
            by_owner[owner].0.push(key);
            by_owner[owner]
                .1
                .extend_from_slice(&rows[i * width..(i + 1) * width]);
        }
        for (owner, (okeys, orows)) in by_owner.into_iter().enumerate() {
            if okeys.is_empty() {
                continue;
            }
            self.routed(
                table,
                owner as u32,
                StateOp::Upsert {
                    merge,
                    keys: okeys,
                    rows: orows,
                },
            )?;
        }
        Ok(())
    }

    fn chunk_cap(&self) -> usize {
        if self.setup.chunk == 0 {
            chunk_edges()
        } else {
            self.setup.chunk as usize
        }
    }

    fn open_source(&mut self) -> Result<Source> {
        let input = std::mem::replace(
            &mut self.setup.input,
            InputSpec::Inline { edges: Vec::new() },
        );
        match input {
            InputSpec::Inline { edges } => Ok(Source::Inline { edges, pos: 0 }),
            InputSpec::Pack {
                path,
                block_start,
                block_end,
                edges,
            } => {
                let opts = clugp_graph::pack::decode_options();
                let reader = ShardedPackReader::open_with(Path::new(&path), opts.checksums)?;
                let range = block_start as usize..block_end as usize;
                let source = if opts.threads > 0 {
                    Source::PipelinedPack(reader.open_pipelined_block_range(range, opts)?)
                } else {
                    Source::Pack(reader.open_block_range(range)?)
                };
                self.setup.input = InputSpec::Pack {
                    path,
                    block_start,
                    block_end,
                    edges,
                };
                Ok(source)
            }
        }
    }

    fn restore_source(&mut self, source: Source) {
        if let Source::Inline { edges, .. } = source {
            self.setup.input = InputSpec::Inline { edges };
        }
    }

    fn run_stage(&mut self, stage: Stage, token: Token) -> Result<StageOut> {
        let mut source = self.open_source()?;
        let mut out = match stage {
            Stage::Baseline => self.stage_baseline(token, &mut source),
            Stage::ClugpPass1 { vmax } => self.stage_clugp_pass1(vmax, token, &mut source),
            Stage::ClugpPairs { num_clusters } => {
                self.stage_clugp_pairs(num_clusters, token, &mut source)
            }
            Stage::ClugpTransform { lmax } => self.stage_clugp_transform(lmax, token, &mut source),
        };
        if out.is_ok() {
            if let Some(e) = source.pack_error() {
                out = Err(PartitionError::InvalidParam(format!("pack stream: {e}")));
            }
        }
        self.restore_source(source);
        out
    }

    fn stage_baseline(&mut self, token: Token, source: &mut Source) -> Result<StageOut> {
        let algo = self.setup.algo.clone();
        let (token, assignments) = match algo {
            AlgoSpec::Hashing { seed } => self.run_hashing(seed, token, source)?,
            AlgoSpec::Grid { seed } => self.run_grid(seed, token, source)?,
            AlgoSpec::Dbh { seed, max_vertices } => {
                self.run_dbh(seed, max_vertices, token, source)?
            }
            AlgoSpec::Greedy { max_vertices } => self.run_greedy(max_vertices, token, source)?,
            AlgoSpec::Hdrf {
                lambda,
                epsilon,
                max_vertices,
            } => self.run_hdrf(lambda, epsilon, max_vertices, token, source)?,
            AlgoSpec::Mint {
                batch,
                wave,
                threads,
                rounds,
                alpha,
                seed,
            } => {
                let cfg = MintConfig {
                    batch_size: batch as usize,
                    wave_width: wave as usize,
                    threads: threads as usize,
                    max_rounds: rounds as usize,
                    balance_weight: alpha,
                    seed,
                };
                self.run_mint(&cfg, token, source)?
            }
            AlgoSpec::Clugp { .. } => {
                return Err(PartitionError::InvalidParam(
                    "CLUGP algo cannot run the baseline stage".into(),
                ))
            }
        };
        Ok((token, assignments, None))
    }

    fn run_hashing(
        &mut self,
        seed: u64,
        mut token: Token,
        source: &mut Source,
    ) -> Result<(Token, Vec<u32>)> {
        let k = self.setup.k;
        let cap = self.chunk_cap();
        let mut buf = Vec::with_capacity(cap);
        let mut assignments = Vec::new();
        while self.next_chunk(source, &mut buf, cap)? != 0 {
            for &e in &buf {
                let p = hashing::hashing_assign(e, seed, k);
                token.loads[p as usize] += 1;
                assignments.push(p);
            }
        }
        Ok((token, assignments))
    }

    fn run_grid(
        &mut self,
        seed: u64,
        mut token: Token,
        source: &mut Source,
    ) -> Result<(Token, Vec<u32>)> {
        let k = self.setup.k;
        let r = grid::grid_dim(k);
        let cap = self.chunk_cap();
        let mut buf = Vec::with_capacity(cap);
        let mut assignments = Vec::new();
        let mut loads = PartitionLoads::from_vec(std::mem::take(&mut token.loads));
        let mut cs_u = Vec::with_capacity(2 * r as usize);
        let mut cs_v = Vec::with_capacity(2 * r as usize);
        while self.next_chunk(source, &mut buf, cap)? != 0 {
            for &e in &buf {
                let p = grid::grid_edge(e, seed, r, k, &loads, &mut cs_u, &mut cs_v);
                assignments.push(p);
                loads.add(p);
            }
        }
        token.loads = loads.into_vec();
        Ok((token, assignments))
    }

    fn run_dbh(
        &mut self,
        seed: u64,
        max_vertices: u64,
        mut token: Token,
        source: &mut Source,
    ) -> Result<(Token, Vec<u32>)> {
        let k = self.setup.k;
        let cap = self.chunk_cap();
        let mut buf = Vec::with_capacity(cap);
        let mut assignments = Vec::new();
        let mut degree: VertexTable<u32> = VertexTable::with_limit(0, 0, max_vertices)?;
        let mut keys: Vec<u64> = Vec::new();
        while self.next_chunk(source, &mut buf, cap)? != 0 {
            distinct_endpoints(&buf, &mut keys);
            let rows = self.fetch(T_MAIN, &keys)?;
            for (i, &key) in keys.iter().enumerate() {
                let v = key as u32;
                degree.ensure(v)?;
                degree[v] = rows[i] as u32;
            }
            for &e in &buf {
                let p = dbh::dbh_edge(e, seed, k, &mut degree)?;
                token.loads[p as usize] += 1;
                assignments.push(p);
            }
            let back: Vec<u64> = keys
                .iter()
                .map(|&key| u64::from(degree[key as u32]))
                .collect();
            self.publish(T_MAIN, MergeOp::Put, &keys, &back)?;
        }
        token.table_len = token.table_len.max(degree.len());
        Ok((token, assignments))
    }

    fn run_greedy(
        &mut self,
        max_vertices: u64,
        mut token: Token,
        source: &mut Source,
    ) -> Result<(Token, Vec<u32>)> {
        let k = self.setup.k;
        let cap = self.chunk_cap();
        let mut buf = Vec::with_capacity(cap);
        let mut assignments = Vec::new();
        let mut replicas = ReplicaTable::with_limit(0, k, max_vertices)?;
        let wr = replicas.words_per_row();
        let mut loads = PartitionLoads::from_vec(std::mem::take(&mut token.loads));
        let mut keys: Vec<u64> = Vec::new();
        while self.next_chunk(source, &mut buf, cap)? != 0 {
            distinct_endpoints(&buf, &mut keys);
            let rows = self.fetch(T_MAIN, &keys)?;
            for (i, &key) in keys.iter().enumerate() {
                replicas.ensure_vertices(key + 1)?;
                replicas.import_row(key as u32, &rows[i * wr..(i + 1) * wr]);
            }
            for &e in &buf {
                let p = greedy::greedy_edge(e, &mut replicas, &mut loads)?;
                assignments.push(p);
            }
            let mut back = vec![0u64; keys.len() * wr];
            for (i, &key) in keys.iter().enumerate() {
                replicas.export_row(key as u32, &mut back[i * wr..(i + 1) * wr]);
            }
            self.publish(T_MAIN, MergeOp::Put, &keys, &back)?;
        }
        token.loads = loads.into_vec();
        token.table_len = token.table_len.max(replicas.num_vertices());
        Ok((token, assignments))
    }

    fn run_hdrf(
        &mut self,
        lambda: f64,
        epsilon: f64,
        max_vertices: u64,
        mut token: Token,
        source: &mut Source,
    ) -> Result<(Token, Vec<u32>)> {
        let k = self.setup.k;
        let cap = self.chunk_cap();
        let mut buf = Vec::with_capacity(cap);
        let mut assignments = Vec::new();
        let mut degree: VertexTable<u32> = VertexTable::with_limit(0, 0, max_vertices)?;
        let mut replicas = ReplicaTable::with_limit(0, k, max_vertices)?;
        let wr = replicas.words_per_row();
        let mut loads = PartitionLoads::from_vec(std::mem::take(&mut token.loads));
        let mut keys: Vec<u64> = Vec::new();
        while self.next_chunk(source, &mut buf, cap)? != 0 {
            distinct_endpoints(&buf, &mut keys);
            let rrows = self.fetch(T_MAIN, &keys)?;
            let drows = self.fetch(T_DEGREE, &keys)?;
            for (i, &key) in keys.iter().enumerate() {
                let v = key as u32;
                replicas.ensure_vertices(key + 1)?;
                replicas.import_row(v, &rrows[i * wr..(i + 1) * wr]);
                degree.ensure(v)?;
                degree[v] = drows[i] as u32;
            }
            for &e in &buf {
                let p = hdrf::hdrf_edge(
                    e,
                    lambda,
                    epsilon,
                    k,
                    &mut degree,
                    &mut replicas,
                    &mut loads,
                )?;
                assignments.push(p);
            }
            let mut back = vec![0u64; keys.len() * wr];
            for (i, &key) in keys.iter().enumerate() {
                replicas.export_row(key as u32, &mut back[i * wr..(i + 1) * wr]);
            }
            self.publish(T_MAIN, MergeOp::Put, &keys, &back)?;
            let dback: Vec<u64> = keys
                .iter()
                .map(|&key| u64::from(degree[key as u32]))
                .collect();
            self.publish(T_DEGREE, MergeOp::Put, &keys, &dback)?;
        }
        token.loads = loads.into_vec();
        token.table_len = token.table_len.max(replicas.num_vertices());
        Ok((token, assignments))
    }

    /// Mint: waves are global — `wave_width × batch_size` edges each — so
    /// every worker solves the full waves its range completes and carries
    /// the remainder to the next worker in the token. The last worker
    /// drains the tail (partial wave / partial batch), exactly where the
    /// monolith's end-of-stream wave lands.
    fn run_mint(
        &mut self,
        cfg: &MintConfig,
        mut token: Token,
        source: &mut Source,
    ) -> Result<(Token, Vec<u32>)> {
        let k = self.setup.k;
        let wave_width = if cfg.wave_width == 0 {
            DEFAULT_WAVE_WIDTH
        } else {
            cfg.wave_width
        };
        if cfg.batch_size == 0 {
            return Err(PartitionError::InvalidParam(
                "batch_size must be positive".into(),
            ));
        }
        let wave_edges = wave_width * cfg.batch_size;
        let pool = mint::build_pool(cfg.threads)?;
        let cap = self.chunk_cap();
        let mut buf = Vec::with_capacity(cap);
        let mut assignments = Vec::new();
        let mut loads = PartitionLoads::from_vec(std::mem::take(&mut token.loads));
        let mut pending = std::mem::take(&mut token.carry);
        let commit =
            |pending_wave: &[Edge], loads: &mut PartitionLoads, assignments: &mut Vec<u32>| {
                let wave: Vec<Vec<Edge>> = pending_wave
                    .chunks(cfg.batch_size)
                    .map(<[Edge]>::to_vec)
                    .collect();
                let snapshot: Vec<u64> = loads.as_slice().to_vec();
                let outcomes = mint::solve_wave(&wave, k, &snapshot, cfg, pool.as_ref());
                for outcome in outcomes {
                    for &p in &outcome.assignments {
                        loads.add(p);
                    }
                    assignments.extend(outcome.assignments);
                }
            };
        while self.next_chunk(source, &mut buf, cap)? != 0 {
            pending.extend_from_slice(&buf);
            while pending.len() >= wave_edges {
                let rest = pending.split_off(wave_edges);
                commit(&pending, &mut loads, &mut assignments);
                pending = rest;
            }
        }
        let last = self.setup.worker + 1 == self.setup.workers;
        if last {
            if !pending.is_empty() {
                commit(&pending, &mut loads, &mut assignments);
            }
            pending = Vec::new();
        }
        token.carry = pending;
        token.loads = loads.into_vec();
        Ok((token, assignments))
    }

    /// CLUGP pass 1. The raw-volume scratch is kept at the full global
    /// length (the token's raw-id watermark) so `vol.push` allocates the
    /// same raw ids as the monolith. Per chunk, the touched-cluster set is
    /// closed under the kernel's operations: every volume it reads or
    /// writes belongs to a fetched chunk vertex's cluster or to a cluster
    /// created in the chunk.
    fn stage_clugp_pass1(
        &mut self,
        vmax: u64,
        mut token: Token,
        source: &mut Source,
    ) -> Result<StageOut> {
        let AlgoSpec::Clugp {
            splitting,
            migration,
            max_vertices,
        } = self.setup.algo
        else {
            return Err(PartitionError::InvalidParam(
                "pass-1 stage requires the CLUGP algo".into(),
            ));
        };
        let migration = migration_from_tag(migration)?;
        let cap = self.chunk_cap();
        let mut buf = Vec::with_capacity(cap);
        let mut cluster_of: VertexTable<u32> =
            VertexTable::with_limit(0, NO_CLUSTER, max_vertices)?;
        let mut degree: VertexTable<u32> = VertexTable::with_limit(0, 0, max_vertices)?;
        let mut divided: VertexTable<bool> = VertexTable::with_limit(0, false, max_vertices)?;
        let mut vol: Vec<u64> = vec![0; token.next_raw as usize];
        let mut splits = token.splits;
        let mut migrations = token.migrations;
        let mut vkeys: Vec<u64> = Vec::new();
        while self.next_chunk(source, &mut buf, cap)? != 0 {
            distinct_endpoints(&buf, &mut vkeys);
            let rows = self.fetch(T_MAIN, &vkeys)?;
            for (i, &key) in vkeys.iter().enumerate() {
                let v = key as u32;
                cluster_of.ensure(v)?;
                degree.ensure(v)?;
                divided.ensure(v)?;
                let w0 = rows[3 * i];
                cluster_of[v] = if w0 == 0 { NO_CLUSTER } else { (w0 - 1) as u32 };
                degree[v] = rows[3 * i + 1] as u32;
                divided[v] = rows[3 * i + 2] != 0;
            }
            let mut ckeys: Vec<u64> = vkeys
                .iter()
                .filter_map(|&key| {
                    let c = cluster_of[key as u32];
                    (c != NO_CLUSTER).then_some(u64::from(c))
                })
                .collect();
            ckeys.sort_unstable();
            ckeys.dedup();
            let crows = self.fetch(T_VOL, &ckeys)?;
            for (i, &ck) in ckeys.iter().enumerate() {
                vol[ck as usize] = crows[i];
            }
            let created_from = vol.len();
            for &e in &buf {
                pass1_edge(
                    e,
                    vmax,
                    splitting,
                    migration,
                    &mut cluster_of,
                    &mut degree,
                    &mut divided,
                    &mut vol,
                    &mut splits,
                    &mut migrations,
                )?;
            }
            let mut vrows = Vec::with_capacity(vkeys.len() * 3);
            for &key in &vkeys {
                let v = key as u32;
                let c = cluster_of[v];
                vrows.push(if c == NO_CLUSTER { 0 } else { u64::from(c) + 1 });
                vrows.push(u64::from(degree[v]));
                vrows.push(u64::from(divided[v]));
            }
            self.publish(T_MAIN, MergeOp::Put, &vkeys, &vrows)?;
            let mut wkeys = ckeys;
            wkeys.extend((created_from..vol.len()).map(|c| c as u64));
            let wrows: Vec<u64> = wkeys.iter().map(|&c| vol[c as usize]).collect();
            self.publish(T_VOL, MergeOp::Put, &wkeys, &wrows)?;
        }
        token.next_raw = vol.len() as u64;
        token.splits = splits;
        token.migrations = migrations;
        token.table_len = token.table_len.max(cluster_of.len());
        Ok((token, Vec::new(), None))
    }

    /// CLUGP pairs: stream the range once against the (now dense) cluster
    /// ids and aggregate the worker's partial cluster graph.
    fn stage_clugp_pairs(
        &mut self,
        num_clusters: u64,
        token: Token,
        source: &mut Source,
    ) -> Result<StageOut> {
        let AlgoSpec::Clugp { max_vertices, .. } = self.setup.algo else {
            return Err(PartitionError::InvalidParam(
                "pairs stage requires the CLUGP algo".into(),
            ));
        };
        let cap = self.chunk_cap();
        let mut buf = Vec::with_capacity(cap);
        let mut cluster_of: VertexTable<u32> =
            VertexTable::with_limit(0, NO_CLUSTER, max_vertices)?;
        let mut sink = PairSink::new(num_clusters as usize);
        let mut vkeys: Vec<u64> = Vec::new();
        while self.next_chunk(source, &mut buf, cap)? != 0 {
            distinct_endpoints(&buf, &mut vkeys);
            let rows = self.fetch(T_MAIN, &vkeys)?;
            for (i, &key) in vkeys.iter().enumerate() {
                let v = key as u32;
                cluster_of.ensure(v)?;
                let w0 = rows[3 * i];
                cluster_of[v] = if w0 == 0 { NO_CLUSTER } else { (w0 - 1) as u32 };
            }
            for &e in &buf {
                sink.push(cluster_of[e.src], cluster_of[e.dst]);
            }
        }
        let (intra, agg) = sink.finish();
        let pairs = PairsPayload {
            intra: intra
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(i, &c)| (i as u64, c))
                .collect(),
            agg,
        };
        Ok((token, Vec::new(), Some(pairs)))
    }

    /// CLUGP pass 3: per chunk, fetch the dense vertex rows plus the
    /// cluster→partition entries those vertices reference, then run the
    /// transformation kernel. No writebacks — the pass only consumes state.
    fn stage_clugp_transform(
        &mut self,
        lmax: u64,
        mut token: Token,
        source: &mut Source,
    ) -> Result<StageOut> {
        let AlgoSpec::Clugp { max_vertices, .. } = self.setup.algo else {
            return Err(PartitionError::InvalidParam(
                "transform stage requires the CLUGP algo".into(),
            ));
        };
        let k = self.setup.k;
        let cap = self.chunk_cap();
        let mut buf = Vec::with_capacity(cap);
        let mut assignments = Vec::new();
        let mut cluster_of: VertexTable<u32> =
            VertexTable::with_limit(0, NO_CLUSTER, max_vertices)?;
        let mut degree: VertexTable<u32> = VertexTable::with_limit(0, 0, max_vertices)?;
        let mut divided: VertexTable<bool> = VertexTable::with_limit(0, false, max_vertices)?;
        let mut cpart: Vec<u32> = Vec::new();
        let mut loads = std::mem::take(&mut token.loads);
        let mut cursor = token.cursor;
        let mut reroutes = token.reroutes;
        let mut vkeys: Vec<u64> = Vec::new();
        while self.next_chunk(source, &mut buf, cap)? != 0 {
            distinct_endpoints(&buf, &mut vkeys);
            let rows = self.fetch(T_MAIN, &vkeys)?;
            for (i, &key) in vkeys.iter().enumerate() {
                let v = key as u32;
                cluster_of.ensure(v)?;
                degree.ensure(v)?;
                divided.ensure(v)?;
                let w0 = rows[3 * i];
                cluster_of[v] = if w0 == 0 { NO_CLUSTER } else { (w0 - 1) as u32 };
                degree[v] = rows[3 * i + 1] as u32;
                divided[v] = rows[3 * i + 2] != 0;
            }
            let mut ckeys: Vec<u64> = vkeys
                .iter()
                .filter_map(|&key| {
                    let c = cluster_of[key as u32];
                    (c != NO_CLUSTER).then_some(u64::from(c))
                })
                .collect();
            ckeys.sort_unstable();
            ckeys.dedup();
            let crows = self.fetch(T_CPART, &ckeys)?;
            for (i, &ck) in ckeys.iter().enumerate() {
                if ck as usize >= cpart.len() {
                    cpart.resize(ck as usize + 1, 0);
                }
                cpart[ck as usize] = crows[i] as u32;
            }
            for &e in &buf {
                let p = transform_edge(
                    e,
                    &cluster_of,
                    &degree,
                    &divided,
                    &cpart,
                    lmax,
                    k,
                    &mut loads,
                    &mut cursor,
                    &mut reroutes,
                );
                assignments.push(p);
            }
        }
        token.loads = loads;
        token.cursor = cursor;
        token.reroutes = reroutes;
        token.table_len = token.table_len.max(cluster_of.len());
        Ok((token, assignments, None))
    }
}

/// Collects the distinct endpoint ids of a chunk, sorted ascending.
fn distinct_endpoints(buf: &[Edge], keys: &mut Vec<u64>) {
    keys.clear();
    for e in buf {
        keys.push(u64::from(e.src));
        keys.push(u64::from(e.dst));
    }
    keys.sort_unstable();
    keys.dedup();
}
