//! Edge-cut partitioning results and quality metrics.

use clugp_graph::csr::CsrGraph;
use serde::Serialize;

/// A vertex → partition assignment.
#[derive(Debug, Clone)]
pub struct VertexPartitioning {
    /// Number of partitions.
    pub k: u32,
    /// Per-vertex partition (`u32::MAX` for vertices outside the stream).
    pub assignment: Vec<u32>,
}

/// Quality of an edge-cut partitioning.
#[derive(Debug, Clone, Serialize)]
pub struct EdgeCutQuality {
    /// Fraction of edges with endpoints in different partitions.
    pub cut_fraction: f64,
    /// Number of cut edges.
    pub cut_edges: u64,
    /// `k · max_vertex_count / |V|` — vertex-balance analogue of τ.
    pub relative_balance: f64,
    /// Per-partition vertex counts.
    pub vertex_counts: Vec<u64>,
}

impl EdgeCutQuality {
    /// Computes cut and balance of `partitioning` over `graph`.
    ///
    /// # Panics
    ///
    /// Panics if the assignment is shorter than the vertex range or contains
    /// out-of-range partitions for assigned vertices.
    pub fn compute(graph: &CsrGraph, partitioning: &VertexPartitioning) -> Self {
        let k = partitioning.k;
        let mut cut = 0u64;
        for e in graph.edges() {
            let pu = partitioning.assignment[e.src as usize];
            let pv = partitioning.assignment[e.dst as usize];
            assert!(pu < k && pv < k, "unassigned endpoint on edge {e}");
            if pu != pv {
                cut += 1;
            }
        }
        let mut counts = vec![0u64; k as usize];
        let mut assigned = 0u64;
        for &p in &partitioning.assignment {
            if p != u32::MAX {
                counts[p as usize] += 1;
                assigned += 1;
            }
        }
        let m = graph.num_edges();
        EdgeCutQuality {
            cut_fraction: if m == 0 { 0.0 } else { cut as f64 / m as f64 },
            cut_edges: cut,
            relative_balance: if assigned == 0 {
                0.0
            } else {
                f64::from(k) * (*counts.iter().max().unwrap() as f64) / assigned as f64
            },
            vertex_counts: counts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clugp_graph::types::Edge;

    fn path4() -> CsrGraph {
        CsrGraph::from_edges(4, &[Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 3)]).unwrap()
    }

    #[test]
    fn no_cut_when_together() {
        let p = VertexPartitioning {
            k: 2,
            assignment: vec![0, 0, 0, 0],
        };
        let q = EdgeCutQuality::compute(&path4(), &p);
        assert_eq!(q.cut_edges, 0);
        assert_eq!(q.cut_fraction, 0.0);
        assert_eq!(q.relative_balance, 2.0); // all on one side
    }

    #[test]
    fn full_cut_when_alternating() {
        let p = VertexPartitioning {
            k: 2,
            assignment: vec![0, 1, 0, 1],
        };
        let q = EdgeCutQuality::compute(&path4(), &p);
        assert_eq!(q.cut_edges, 3);
        assert!((q.cut_fraction - 1.0).abs() < 1e-12);
        assert!((q.relative_balance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn optimal_bisection_of_path() {
        let p = VertexPartitioning {
            k: 2,
            assignment: vec![0, 0, 1, 1],
        };
        let q = EdgeCutQuality::compute(&path4(), &p);
        assert_eq!(q.cut_edges, 1);
        assert_eq!(q.vertex_counts, vec![2, 2]);
    }

    #[test]
    #[should_panic(expected = "unassigned endpoint")]
    fn rejects_unassigned_endpoint() {
        let p = VertexPartitioning {
            k: 2,
            assignment: vec![0, u32::MAX, 0, 0],
        };
        let _ = EdgeCutQuality::compute(&path4(), &p);
    }
}
