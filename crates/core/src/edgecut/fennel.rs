//! FENNEL (Tsourakakis et al., WSDM 2014): streaming edge-cut with an
//! interpolated objective — place vertex `v` in the partition maximizing
//! `|N(v) ∩ p| − γ·α·|p|^{γ−1}`, where `α = m·(k^{γ−1})/n^γ` couples the
//! penalty to the graph's density. `γ = 1.5` is the paper's recommended
//! setting.

use super::metrics::VertexPartitioning;
use super::stream::{VertexStream, DEFAULT_CHUNK_VERTICES};
use super::VertexPartitioner;
use crate::error::{PartitionError, Result};
use crate::vertex_table::VertexTable;

/// The FENNEL partitioner.
#[derive(Debug, Clone)]
pub struct Fennel {
    /// Interpolation exponent γ (> 1).
    pub gamma: f64,
    /// Hard balance slack ν: no partition may exceed `ν·n/k` vertices.
    pub slack: f64,
}

impl Default for Fennel {
    fn default() -> Self {
        Fennel {
            gamma: 1.5,
            slack: 1.1,
        }
    }
}

impl VertexPartitioner for Fennel {
    fn name(&self) -> &'static str {
        "FENNEL"
    }

    fn partition(&mut self, stream: &mut VertexStream, k: u32) -> Result<VertexPartitioning> {
        if k == 0 {
            return Err(PartitionError::InvalidParam("k must be at least 1".into()));
        }
        if self.gamma <= 1.0 {
            return Err(PartitionError::InvalidParam(format!(
                "gamma must exceed 1, got {}",
                self.gamma
            )));
        }
        let n = stream.num_vertices().max(1) as f64;
        let m = (stream.total_adjacency() / 2) as f64;
        let kf = f64::from(k);
        let alpha = m * kf.powf(self.gamma - 1.0) / n.powf(self.gamma);
        let cap = (self.slack * n / kf).ceil() as u64;

        let mut assignment: VertexTable<u32> = VertexTable::new(stream.num_vertices(), u32::MAX)?;
        let mut counts = vec![0u64; k as usize];
        let mut neighbor_hits = vec![0u64; k as usize];
        stream.reset();
        while let Some(chunk) = stream.next_chunk(DEFAULT_CHUNK_VERTICES) {
            for rec in chunk {
                neighbor_hits.iter_mut().for_each(|h| *h = 0);
                for &nb in rec.neighbors {
                    let p = assignment[nb];
                    if p != u32::MAX {
                        neighbor_hits[p as usize] += 1;
                    }
                }
                let mut best: Option<(u32, f64)> = None;
                for p in 0..k {
                    if counts[p as usize] >= cap {
                        continue; // hard slack cap
                    }
                    let load = counts[p as usize] as f64;
                    let score = neighbor_hits[p as usize] as f64
                        - self.gamma * alpha * load.powf(self.gamma - 1.0);
                    match best {
                        Some((_, bs)) if bs >= score => {}
                        _ => best = Some((p, score)),
                    }
                }
                // All partitions capped can only happen with pathological
                // slack; fall back to the least-loaded partition.
                let chosen = best.map(|(p, _)| p).unwrap_or_else(|| {
                    counts
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &c)| c)
                        .map(|(p, _)| p as u32)
                        .expect("k >= 1")
                });
                assignment[rec.vertex] = chosen;
                counts[chosen as usize] += 1;
            }
        }
        Ok(VertexPartitioning {
            k,
            assignment: assignment.into_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::metrics::EdgeCutQuality;
    use super::super::stream::vertex_stream_from_graph;
    use super::super::{HashVertex, VertexPartitioner};
    use super::*;
    use clugp_graph::csr::CsrGraph;
    use clugp_graph::types::Edge;

    #[test]
    fn keeps_most_of_each_clique_together() {
        // FENNEL's density-coupled penalty legitimately scatters the first
        // vertex or two of a clique (hits < γα early on), so unlike LDG the
        // cut is not exactly zero — but it must stay far below random.
        let mut edges = Vec::new();
        for base in [0u32, 16] {
            for a in 0..16 {
                for b in (a + 1)..16 {
                    edges.push(Edge::new(base + a, base + b));
                }
            }
        }
        let g = CsrGraph::from_edges(32, &edges).unwrap();
        let mut s = vertex_stream_from_graph(&g);
        let p = Fennel::default().partition(&mut s, 2).unwrap();
        let q = EdgeCutQuality::compute(&g, &p);
        assert!(
            q.cut_fraction < 0.25,
            "cut {} too high: {:?}",
            q.cut_fraction,
            p.assignment
        );
    }

    #[test]
    fn slack_cap_is_hard() {
        let g = clugp_graph::gen::generate_web_crawl(&clugp_graph::gen::WebCrawlConfig {
            vertices: 2_000,
            ..Default::default()
        });
        let mut s = vertex_stream_from_graph(&g);
        let p = Fennel::default().partition(&mut s, 8).unwrap();
        let q = EdgeCutQuality::compute(&g, &p);
        assert!(
            q.relative_balance <= 1.1 + 0.01,
            "balance {}",
            q.relative_balance
        );
    }

    #[test]
    fn beats_hash_on_community_graph() {
        let g = clugp_graph::gen::generate_web_crawl(&clugp_graph::gen::WebCrawlConfig {
            vertices: 3_000,
            ..Default::default()
        });
        let mut s = vertex_stream_from_graph(&g);
        let fennel = Fennel::default().partition(&mut s, 8).unwrap();
        let hash = HashVertex.partition(&mut s, 8).unwrap();
        let qf = EdgeCutQuality::compute(&g, &fennel);
        let qh = EdgeCutQuality::compute(&g, &hash);
        assert!(
            qf.cut_fraction < qh.cut_fraction,
            "FENNEL {} vs hash {}",
            qf.cut_fraction,
            qh.cut_fraction
        );
    }

    #[test]
    fn rejects_bad_gamma() {
        let g = CsrGraph::from_edges(2, &[Edge::new(0, 1)]).unwrap();
        let mut s = vertex_stream_from_graph(&g);
        let mut f = Fennel {
            gamma: 1.0,
            slack: 1.1,
        };
        assert!(f.partition(&mut s, 2).is_err());
    }

    #[test]
    fn deterministic() {
        let g = clugp_graph::gen::generate_er(&clugp_graph::gen::ErConfig {
            vertices: 300,
            edges: 900,
            seed: 8,
        });
        let mut s = vertex_stream_from_graph(&g);
        let a = Fennel::default().partition(&mut s, 4).unwrap();
        let b = Fennel::default().partition(&mut s, 4).unwrap();
        assert_eq!(a.assignment, b.assignment);
    }
}
