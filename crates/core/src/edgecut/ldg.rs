//! LDG — Linear Deterministic Greedy (Stanton & Kliot, KDD 2012), the
//! canonical streaming edge-cut heuristic: place each arriving vertex in
//! the partition holding most of its already-placed neighbors, damped by a
//! linear capacity penalty.

use super::metrics::VertexPartitioning;
use super::stream::{VertexStream, DEFAULT_CHUNK_VERTICES};
use super::VertexPartitioner;
use crate::error::{PartitionError, Result};
use crate::vertex_table::VertexTable;

/// The LDG partitioner.
#[derive(Debug, Clone, Default)]
pub struct Ldg;

impl VertexPartitioner for Ldg {
    fn name(&self) -> &'static str {
        "LDG"
    }

    fn partition(&mut self, stream: &mut VertexStream, k: u32) -> Result<VertexPartitioning> {
        if k == 0 {
            return Err(PartitionError::InvalidParam("k must be at least 1".into()));
        }
        let n = stream.num_vertices();
        // Capacity C = ceil(n/k); the (1 − |p|/C) factor caps partitions.
        let capacity = n.div_ceil(u64::from(k)).max(1) as f64;
        // VertexTable gives the cap-checked, honestly-measured per-vertex
        // state; n comes from the CSR-backed stream, so growth never occurs.
        let mut assignment: VertexTable<u32> = VertexTable::new(n, u32::MAX)?;
        let mut counts = vec![0u64; k as usize];
        let mut neighbor_hits = vec![0u64; k as usize];
        stream.reset();
        while let Some(chunk) = stream.next_chunk(DEFAULT_CHUNK_VERTICES) {
            for rec in chunk {
                neighbor_hits.iter_mut().for_each(|h| *h = 0);
                for &nb in rec.neighbors {
                    let p = assignment[nb];
                    if p != u32::MAX {
                        neighbor_hits[p as usize] += 1;
                    }
                }
                let mut best = 0u32;
                let mut best_score = f64::NEG_INFINITY;
                for p in 0..k {
                    let weight = 1.0 - counts[p as usize] as f64 / capacity;
                    // +1 keeps the capacity factor decisive when no neighbor
                    // is placed yet (pure balance), the standard LDG tweak.
                    let score = (neighbor_hits[p as usize] as f64 + 1.0) * weight;
                    if score > best_score {
                        best_score = score;
                        best = p;
                    }
                }
                assignment[rec.vertex] = best;
                counts[best as usize] += 1;
            }
        }
        Ok(VertexPartitioning {
            k,
            assignment: assignment.into_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::metrics::EdgeCutQuality;
    use super::super::stream::vertex_stream_from_graph;
    use super::super::{HashVertex, VertexPartitioner};
    use super::*;
    use clugp_graph::csr::CsrGraph;
    use clugp_graph::types::Edge;

    #[test]
    fn keeps_cliques_together() {
        // Two 4-cliques: LDG should cut nothing with k=2.
        let mut edges = Vec::new();
        for base in [0u32, 4] {
            for a in 0..4 {
                for b in (a + 1)..4 {
                    edges.push(Edge::new(base + a, base + b));
                }
            }
        }
        let g = CsrGraph::from_edges(8, &edges).unwrap();
        let mut s = vertex_stream_from_graph(&g);
        let p = Ldg.partition(&mut s, 2).unwrap();
        let q = EdgeCutQuality::compute(&g, &p);
        assert_eq!(
            q.cut_edges, 0,
            "cliques should not be cut: {:?}",
            p.assignment
        );
        assert_eq!(q.vertex_counts, vec![4, 4]);
    }

    #[test]
    fn balance_respected() {
        let g = clugp_graph::gen::generate_er(&clugp_graph::gen::ErConfig {
            vertices: 1_000,
            edges: 5_000,
            seed: 5,
        });
        let mut s = vertex_stream_from_graph(&g);
        let p = Ldg.partition(&mut s, 8).unwrap();
        let q = EdgeCutQuality::compute(&g, &p);
        assert!(q.relative_balance <= 1.2, "balance {}", q.relative_balance);
    }

    #[test]
    fn beats_hash_on_community_graph() {
        let g = clugp_graph::gen::generate_web_crawl(&clugp_graph::gen::WebCrawlConfig {
            vertices: 3_000,
            ..Default::default()
        });
        let mut s = vertex_stream_from_graph(&g);
        let ldg = Ldg.partition(&mut s, 8).unwrap();
        let hash = HashVertex.partition(&mut s, 8).unwrap();
        let ql = EdgeCutQuality::compute(&g, &ldg);
        let qh = EdgeCutQuality::compute(&g, &hash);
        assert!(
            ql.cut_fraction < qh.cut_fraction,
            "LDG {} vs hash {}",
            ql.cut_fraction,
            qh.cut_fraction
        );
    }

    #[test]
    fn deterministic() {
        let g = clugp_graph::gen::generate_er(&clugp_graph::gen::ErConfig {
            vertices: 200,
            edges: 600,
            seed: 2,
        });
        let mut s = vertex_stream_from_graph(&g);
        let a = Ldg.partition(&mut s, 4).unwrap();
        let b = Ldg.partition(&mut s, 4).unwrap();
        assert_eq!(a.assignment, b.assignment);
    }
}
