//! Edge-cut streaming partitioning — the *other* partitioning family the
//! paper positions CLUGP against (§VII): assign **vertices** to partitions,
//! minimizing the number of edges whose endpoints land in different
//! partitions.
//!
//! Included because any adopter of a partitioning library needs both
//! families, and because the paper's §II-C argument ("balanced edge-cut
//! performs poorly on power-law graphs") becomes testable: the integration
//! suite compares cut fractions on power-law vs uniform graphs.
//!
//! * [`Ldg`] — Linear Deterministic Greedy (Stanton & Kliot, KDD'12):
//!   maximize `|N(v) ∩ p| · (1 − |p|/C)`.
//! * [`Fennel`] — Tsourakakis et al., WSDM'14: maximize
//!   `|N(v) ∩ p| − γ·α·|p|^{γ−1}` (interpolates modularity and cut).
//! * [`HashVertex`] — the baseline: `hash(v) mod k`.
//!
//! All three consume a [`VertexStream`]: vertices arriving with their
//! (undirected) neighbor lists, the standard model for streaming edge-cut.

mod fennel;
mod ldg;
mod metrics;
mod stream;

pub use fennel::Fennel;
pub use ldg::Ldg;
pub use metrics::{EdgeCutQuality, VertexPartitioning};
pub use stream::{vertex_stream_from_graph, VertexChunk, VertexRecord, VertexStream};

use crate::error::Result;

/// A streaming edge-cut (vertex) partitioner.
pub trait VertexPartitioner {
    /// Short identifier.
    fn name(&self) -> &'static str;

    /// Assigns every streamed vertex to one of `k` partitions.
    fn partition(&mut self, stream: &mut VertexStream, k: u32) -> Result<VertexPartitioning>;
}

/// Hash baseline: `mix(v) mod k`.
#[derive(Debug, Clone, Default)]
pub struct HashVertex;

impl VertexPartitioner for HashVertex {
    fn name(&self) -> &'static str {
        "Hash(V)"
    }

    fn partition(&mut self, stream: &mut VertexStream, k: u32) -> Result<VertexPartitioning> {
        if k == 0 {
            return Err(crate::error::PartitionError::InvalidParam(
                "k must be at least 1".into(),
            ));
        }
        let n = stream.num_vertices();
        let mut assignment = vec![u32::MAX; n as usize];
        stream.reset();
        while let Some(rec) = stream.next_vertex() {
            assignment[rec.vertex as usize] =
                (crate::partitioner::mix64(u64::from(rec.vertex)) % u64::from(k)) as u32;
        }
        Ok(VertexPartitioning { k, assignment })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clugp_graph::csr::CsrGraph;
    use clugp_graph::types::Edge;

    #[test]
    fn hash_vertex_covers_all() {
        let g = CsrGraph::from_edges(4, &[Edge::new(0, 1), Edge::new(2, 3)]).unwrap();
        let mut s = vertex_stream_from_graph(&g);
        let p = HashVertex.partition(&mut s, 3).unwrap();
        assert!(p.assignment.iter().all(|&a| a < 3));
    }

    #[test]
    fn hash_vertex_rejects_zero_k() {
        let g = CsrGraph::from_edges(2, &[Edge::new(0, 1)]).unwrap();
        let mut s = vertex_stream_from_graph(&g);
        assert!(HashVertex.partition(&mut s, 0).is_err());
    }
}
