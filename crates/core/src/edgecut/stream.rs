//! The vertex-streaming model for edge-cut partitioning: vertices arrive
//! one at a time together with their full (undirected) neighbor list — the
//! model of Stanton–Kliot and Fennel.
//!
//! Mirroring the chunked edge-stream ABI, consumers pull *blocks* of
//! vertices via [`VertexStream::next_chunk`] (one cursor check per block,
//! records decoded straight off the CSR arrays) instead of paying a call and
//! an `Option` branch per vertex.

use clugp_graph::csr::CsrGraph;
use clugp_graph::types::VertexId;

/// Default number of vertex records per chunk pull.
pub const DEFAULT_CHUNK_VERTICES: usize = 1024;

/// One arriving vertex with its undirected neighborhood.
#[derive(Debug, Clone)]
pub struct VertexRecord<'a> {
    /// The vertex id.
    pub vertex: VertexId,
    /// Its neighbors (out ∪ in), possibly with duplicates for multi-edges.
    pub neighbors: &'a [VertexId],
}

/// A resettable stream of vertices with adjacency, in vertex-id order (the
/// crawl order of our generators; callers can relabel for other orders).
#[derive(Debug, Clone)]
pub struct VertexStream {
    offsets: Vec<u64>,
    neighbors: Vec<VertexId>,
    cursor: u32,
}

impl VertexStream {
    /// Number of vertices in the stream.
    pub fn num_vertices(&self) -> u64 {
        (self.offsets.len() - 1) as u64
    }

    /// Total undirected adjacency entries (2·|E|).
    pub fn total_adjacency(&self) -> u64 {
        self.neighbors.len() as u64
    }

    /// Next vertex record, or `None` at the end.
    pub fn next_vertex(&mut self) -> Option<VertexRecord<'_>> {
        if u64::from(self.cursor) >= self.num_vertices() {
            return None;
        }
        let v = self.cursor;
        self.cursor += 1;
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        Some(VertexRecord {
            vertex: v,
            neighbors: &self.neighbors[lo..hi],
        })
    }

    /// Lends an iterator over the next block of up to `cap` vertex records
    /// and advances the cursor past them; `None` at the end of the stream.
    ///
    /// Records are yielded in the same order `next_vertex` would produce, so
    /// any chunking is result-identical to the per-vertex pull.
    pub fn next_chunk(&mut self, cap: usize) -> Option<VertexChunk<'_>> {
        let n = self.num_vertices();
        let remaining = n - u64::from(self.cursor);
        if remaining == 0 {
            return None;
        }
        let take = remaining.min(cap.max(1) as u64) as u32;
        let start = self.cursor;
        self.cursor += take;
        Some(VertexChunk {
            vertex: start,
            end: start + take,
            offsets: &self.offsets,
            neighbors: &self.neighbors,
        })
    }

    /// Rewinds to the first vertex.
    pub fn reset(&mut self) {
        self.cursor = 0;
    }
}

/// A borrowed block of consecutive vertex records (see
/// [`VertexStream::next_chunk`]).
#[derive(Debug)]
pub struct VertexChunk<'a> {
    vertex: u32,
    end: u32,
    offsets: &'a [u64],
    neighbors: &'a [VertexId],
}

impl<'a> Iterator for VertexChunk<'a> {
    type Item = VertexRecord<'a>;

    #[inline]
    fn next(&mut self) -> Option<VertexRecord<'a>> {
        if self.vertex >= self.end {
            return None;
        }
        let v = self.vertex;
        self.vertex += 1;
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        Some(VertexRecord {
            vertex: v,
            neighbors: &self.neighbors[lo..hi],
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.end - self.vertex) as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for VertexChunk<'_> {}

/// Builds the undirected vertex stream of `graph` (neighbors = out ∪ in).
pub fn vertex_stream_from_graph(graph: &CsrGraph) -> VertexStream {
    let n = graph.num_vertices() as usize;
    // Exclusive-prefix-shift CSR build (no cloned cursor vector): count
    // degrees, prefix-sum into bucket starts, bump the starts to ends while
    // scattering, then shift right once to restore canonical offsets.
    let mut offsets = vec![0u64; n + 1];
    for e in graph.edges() {
        offsets[e.src as usize] += 1;
        offsets[e.dst as usize] += 1;
    }
    let mut acc = 0u64;
    for o in offsets.iter_mut() {
        let count = *o;
        *o = acc;
        acc += count;
    }
    let mut neighbors = vec![0 as VertexId; acc as usize];
    for e in graph.edges() {
        neighbors[offsets[e.src as usize] as usize] = e.dst;
        offsets[e.src as usize] += 1;
        neighbors[offsets[e.dst as usize] as usize] = e.src;
        offsets[e.dst as usize] += 1;
    }
    offsets.copy_within(0..n, 1);
    offsets[0] = 0;
    VertexStream {
        offsets,
        neighbors,
        cursor: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clugp_graph::types::Edge;

    #[test]
    fn stream_yields_undirected_neighbors() {
        let g = CsrGraph::from_edges(3, &[Edge::new(0, 1), Edge::new(2, 0)]).unwrap();
        let mut s = vertex_stream_from_graph(&g);
        let r0 = s.next_vertex().unwrap();
        assert_eq!(r0.vertex, 0);
        let mut n0 = r0.neighbors.to_vec();
        n0.sort_unstable();
        assert_eq!(n0, vec![1, 2]);
        assert_eq!(s.next_vertex().unwrap().neighbors, &[0]);
        assert_eq!(s.next_vertex().unwrap().neighbors, &[0]);
        assert!(s.next_vertex().is_none());
    }

    #[test]
    fn reset_restarts() {
        let g = CsrGraph::from_edges(2, &[Edge::new(0, 1)]).unwrap();
        let mut s = vertex_stream_from_graph(&g);
        while s.next_vertex().is_some() {}
        s.reset();
        assert_eq!(s.next_vertex().unwrap().vertex, 0);
    }

    #[test]
    fn totals() {
        let g = CsrGraph::from_edges(3, &[Edge::new(0, 1), Edge::new(1, 2)]).unwrap();
        let s = vertex_stream_from_graph(&g);
        assert_eq!(s.num_vertices(), 3);
        assert_eq!(s.total_adjacency(), 4);
    }

    #[test]
    fn chunked_records_match_per_vertex_records() {
        let edges: Vec<Edge> = (0..200u32)
            .map(|i| Edge::new(i % 40, (i * 7 + 1) % 40))
            .collect();
        let g = CsrGraph::from_edges(40, &edges).unwrap();
        let mut per_vertex = vertex_stream_from_graph(&g);
        let mut reference: Vec<(VertexId, Vec<VertexId>)> = Vec::new();
        while let Some(r) = per_vertex.next_vertex() {
            reference.push((r.vertex, r.neighbors.to_vec()));
        }
        for cap in [1usize, 7, 4096] {
            let mut s = vertex_stream_from_graph(&g);
            let mut seen = Vec::new();
            while let Some(chunk) = s.next_chunk(cap) {
                for r in chunk {
                    seen.push((r.vertex, r.neighbors.to_vec()));
                }
            }
            assert_eq!(seen, reference, "cap={cap}");
        }
    }

    #[test]
    fn chunk_sizes_and_exhaustion() {
        let g = CsrGraph::from_edges(5, &[Edge::new(0, 1)]).unwrap();
        let mut s = vertex_stream_from_graph(&g);
        assert_eq!(s.next_chunk(3).unwrap().len(), 3);
        assert_eq!(s.next_chunk(3).unwrap().len(), 2);
        assert!(s.next_chunk(3).is_none());
        s.reset();
        assert_eq!(s.next_chunk(100).unwrap().len(), 5);
    }
}
