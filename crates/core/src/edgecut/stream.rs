//! The vertex-streaming model for edge-cut partitioning: vertices arrive
//! one at a time together with their full (undirected) neighbor list — the
//! model of Stanton–Kliot and Fennel.

use clugp_graph::csr::CsrGraph;
use clugp_graph::types::VertexId;

/// One arriving vertex with its undirected neighborhood.
#[derive(Debug, Clone)]
pub struct VertexRecord<'a> {
    /// The vertex id.
    pub vertex: VertexId,
    /// Its neighbors (out ∪ in), possibly with duplicates for multi-edges.
    pub neighbors: &'a [VertexId],
}

/// A resettable stream of vertices with adjacency, in vertex-id order (the
/// crawl order of our generators; callers can relabel for other orders).
#[derive(Debug, Clone)]
pub struct VertexStream {
    offsets: Vec<u64>,
    neighbors: Vec<VertexId>,
    cursor: u32,
}

impl VertexStream {
    /// Number of vertices in the stream.
    pub fn num_vertices(&self) -> u64 {
        (self.offsets.len() - 1) as u64
    }

    /// Total undirected adjacency entries (2·|E|).
    pub fn total_adjacency(&self) -> u64 {
        self.neighbors.len() as u64
    }

    /// Next vertex record, or `None` at the end.
    pub fn next_vertex(&mut self) -> Option<VertexRecord<'_>> {
        if u64::from(self.cursor) >= self.num_vertices() {
            return None;
        }
        let v = self.cursor;
        self.cursor += 1;
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        Some(VertexRecord {
            vertex: v,
            neighbors: &self.neighbors[lo..hi],
        })
    }

    /// Rewinds to the first vertex.
    pub fn reset(&mut self) {
        self.cursor = 0;
    }
}

/// Builds the undirected vertex stream of `graph` (neighbors = out ∪ in).
pub fn vertex_stream_from_graph(graph: &CsrGraph) -> VertexStream {
    let n = graph.num_vertices() as usize;
    let mut deg = vec![0u64; n];
    for e in graph.edges() {
        deg[e.src as usize] += 1;
        deg[e.dst as usize] += 1;
    }
    let mut offsets = vec![0u64; n + 1];
    for i in 0..n {
        offsets[i + 1] = offsets[i] + deg[i];
    }
    let mut cursor = offsets.clone();
    let mut neighbors = vec![0 as VertexId; offsets[n] as usize];
    for e in graph.edges() {
        neighbors[cursor[e.src as usize] as usize] = e.dst;
        cursor[e.src as usize] += 1;
        neighbors[cursor[e.dst as usize] as usize] = e.src;
        cursor[e.dst as usize] += 1;
    }
    VertexStream {
        offsets,
        neighbors,
        cursor: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clugp_graph::types::Edge;

    #[test]
    fn stream_yields_undirected_neighbors() {
        let g = CsrGraph::from_edges(3, &[Edge::new(0, 1), Edge::new(2, 0)]).unwrap();
        let mut s = vertex_stream_from_graph(&g);
        let r0 = s.next_vertex().unwrap();
        assert_eq!(r0.vertex, 0);
        let mut n0 = r0.neighbors.to_vec();
        n0.sort_unstable();
        assert_eq!(n0, vec![1, 2]);
        assert_eq!(s.next_vertex().unwrap().neighbors, &[0]);
        assert_eq!(s.next_vertex().unwrap().neighbors, &[0]);
        assert!(s.next_vertex().is_none());
    }

    #[test]
    fn reset_restarts() {
        let g = CsrGraph::from_edges(2, &[Edge::new(0, 1)]).unwrap();
        let mut s = vertex_stream_from_graph(&g);
        while s.next_vertex().is_some() {}
        s.reset();
        assert_eq!(s.next_vertex().unwrap().vertex, 0);
    }

    #[test]
    fn totals() {
        let g = CsrGraph::from_edges(3, &[Edge::new(0, 1), Edge::new(1, 2)]).unwrap();
        let s = vertex_stream_from_graph(&g);
        assert_eq!(s.num_vertices(), 3);
        assert_eq!(s.total_adjacency(), 4);
    }
}
