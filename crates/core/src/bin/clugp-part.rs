//! `clugp-part` — command-line vertex-cut partitioning.
//!
//! ```text
//! clugp-part <edges-file> --k <K> [options]
//!
//! <edges-file>      text edge list ("src dst" per line, # comments), the
//!                   flat binary format (CLUGPGR1), or a compressed pack
//!                   (CLUGPZ01, written by clugp-pack) — detected by magic
//!                   bytes, never by extension
//! --k <K>           number of partitions (required)
//! --algo <name>     clugp (default) | hdrf | greedy | hashing | dbh | mint | grid
//! --order <name>    bfs (default) | dfs | random | asis
//! --tau <float>     CLUGP imbalance factor (default 1.0)
//! --threads <N>     CLUGP/Mint worker threads (default: all cores)
//! --chunk-size <N>  edges per stream chunk pull (default 4096); a tuning
//!                   knob only — partitions are chunking-invariant
//! --decode-threads <N>
//!                   decode packed (CLUGPZ) input on N pipeline worker
//!                   threads running ahead of the consumer (default:
//!                   serial in-consumer decode; results are bit-identical
//!                   either way)
//! --prefetch <D>    blocks the decode pipeline may run ahead (default 4;
//!                   bounds pipeline memory at O(D × block))
//! --checksums <p>   full (default) | header | off — how much CRC
//!                   verification pack reads perform
//! --sparse          treat the input as a text edge list with arbitrary
//!                   (sparse) 64-bit vertex ids — hashed URLs, crawl ids —
//!                   remapped onto the dense internal space during the
//!                   first pass; output is translated back to the external
//!                   ids. Streams in file order.
//! --output <file>   write per-edge assignment as "src dst partition" TSV
//! --workers <N>     shard the run across N workers through the
//!                   coordinator/worker engine (default 1; results are
//!                   bit-identical at any worker count)
//! --transport <t>   channel (default: in-process worker threads) | unix
//!                   (spawn N worker *processes* talking length-prefixed
//!                   frames over Unix sockets)
//! --socket-dir <d>  where unix-transport sockets live (default: a fresh
//!                   temp directory); stale *.sock files there are removed
//!                   at startup
//! --ampc-mode <m>   sequenced (default: the streaming token makes results
//!                   bit-identical to the monolith) | relaxed (workers
//!                   stream concurrently against local tables and reconcile
//!                   at epoch barriers; deterministic for a fixed worker
//!                   count, but quality drifts from the monolith)
//! --ampc-epoch-chunks <N>
//!                   relaxed mode: chunks a worker streams between epoch
//!                   barriers (default 8; smaller = fresher scores, more
//!                   exchange)
//! --worker-timeout <secs>
//!                   distributed runs: max silence from a worker before its
//!                   link is declared dead (default 30; 0 disables the
//!                   deadline)
//! --max-retries <N> distributed runs: pass replays from the last barrier
//!                   checkpoint before the run fails (default 2; 0 turns
//!                   supervision off)
//! --checkpoint-dir <dir>
//!                   distributed runs: persist barrier checkpoints
//!                   (CLUGPCK1 files) here; without it checkpoints stay in
//!                   memory for crash recovery only
//! --resume          distributed runs: skip passes already covered by the
//!                   newest valid checkpoint in --checkpoint-dir
//! --trace-out <file>
//!                   distributed runs: record pass/chunk/barrier spans on
//!                   the coordinator and every worker and write a Chrome
//!                   trace-event JSON (loads in Perfetto or
//!                   chrome://tracing; one lane per process). Tracing never
//!                   changes the partition — the emitted assignment stays
//!                   byte-identical to an untraced run
//! --trace-summary   distributed runs: print a per-lane span/counter table
//!                   on stderr after the run
//! --metrics-out <file>
//!                   distributed runs: write the structured metrics
//!                   snapshot (pass wall-clock, bytes per verb, epoch
//!                   drift, checkpoint durations, retries, decode stalls)
//!                   as JSON
//! --net-stats       distributed runs: print the per-verb frame/byte
//!                   breakdown on stderr
//! --emit-placement <dir>
//!                   write a placement directory (assignment snapshot +
//!                   replica table) consumable by the engine crate
//! ```

use clugp::ampc::coordinator::DistAlgo;
use clugp::ampc::proto::Msg;
use clugp::ampc::{
    run_coordinator, run_distributed, run_worker, AmpcMode, DistConfig, DistInput, NetStats,
    SuperviseConfig, Transport, TransportKind, UnixTransport,
};
use clugp::baselines::{Dbh, Greedy, Grid, Hashing, Hdrf, Mint, MintConfig};
use clugp::clugp::{Clugp, ClugpConfig};
use clugp::error::{FaultKind, PartitionError};
use clugp::metrics::PartitionQuality;
use clugp::obs;
use clugp::partition::Partitioning;
use clugp::partitioner::Partitioner;
use clugp::state::ReplicaTable;
use clugp_graph::csr::CsrGraph;
use clugp_graph::io::binary::read_binary_graph;
use clugp_graph::io::edge_list::read_edge_list;
use clugp_graph::io::{open_edge_stream, open_sparse_edge_stream, sniff_format, GraphFileFormat};
use clugp_graph::order::{ordered_edges, StreamOrder};
use clugp_graph::pack::{ChecksumPolicy, DecodeOptions, DEFAULT_PREFETCH_BLOCKS};
use clugp_graph::stream::{collect_stream, InMemoryStream, RestreamableStream};
use clugp_graph::types::Edge;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Duration, Instant};

#[derive(Debug, Clone)]
struct Options {
    input: String,
    k: u32,
    algo: String,
    order: String,
    tau: f64,
    threads: usize,
    chunk_size: Option<usize>,
    decode_threads: usize,
    prefetch: usize,
    checksums: ChecksumPolicy,
    sparse: bool,
    output: Option<String>,
    workers: u32,
    transport: String,
    ampc_mode: AmpcMode,
    ampc_epoch_chunks: u32,
    socket_dir: Option<String>,
    worker_timeout: Option<f64>,
    max_retries: Option<u32>,
    checkpoint_dir: Option<String>,
    resume: bool,
    trace_out: Option<String>,
    trace_summary: bool,
    metrics_out: Option<String>,
    net_stats: bool,
    emit_placement: Option<String>,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            input: String::new(),
            k: 0,
            algo: "clugp".into(),
            order: "bfs".into(),
            tau: 1.0,
            threads: 0,
            chunk_size: None,
            decode_threads: 0,
            prefetch: DEFAULT_PREFETCH_BLOCKS,
            checksums: ChecksumPolicy::Full,
            sparse: false,
            output: None,
            workers: 1,
            transport: "channel".into(),
            ampc_mode: AmpcMode::Sequenced,
            ampc_epoch_chunks: 0,
            socket_dir: None,
            worker_timeout: None,
            max_retries: None,
            checkpoint_dir: None,
            resume: false,
            trace_out: None,
            trace_summary: false,
            metrics_out: None,
            net_stats: false,
            emit_placement: None,
        }
    }
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter().peekable();
    let mut positional = Vec::new();
    let mut order_set = false;
    while let Some(a) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match a.as_str() {
            "--k" => opts.k = value("--k")?.parse().map_err(|e| format!("--k: {e}"))?,
            "--algo" => opts.algo = value("--algo")?.to_lowercase(),
            "--order" => {
                opts.order = value("--order")?.to_lowercase();
                order_set = true;
            }
            "--tau" => opts.tau = value("--tau")?.parse().map_err(|e| format!("--tau: {e}"))?,
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--chunk-size" => {
                let n: usize = value("--chunk-size")?
                    .parse()
                    .map_err(|e| format!("--chunk-size: {e}"))?;
                if n == 0 {
                    return Err(
                        "--chunk-size must be >= 1 (a zero chunk would read as exhaustion)".into(),
                    );
                }
                opts.chunk_size = Some(n);
            }
            "--decode-threads" => {
                opts.decode_threads = value("--decode-threads")?
                    .parse()
                    .map_err(|e| format!("--decode-threads: {e}"))?;
                if opts.decode_threads == 0 {
                    return Err(
                        "--decode-threads must be >= 1 (omit the flag for serial decode)".into(),
                    );
                }
            }
            "--prefetch" => {
                opts.prefetch = value("--prefetch")?
                    .parse()
                    .map_err(|e| format!("--prefetch: {e}"))?;
                if opts.prefetch == 0 {
                    return Err(
                        "--prefetch must be >= 1 (the pipeline needs at least one block in flight)"
                            .into(),
                    );
                }
            }
            "--checksums" => {
                opts.checksums = value("--checksums")?
                    .parse()
                    .map_err(|e| format!("--checksums: {e}"))?;
            }
            "--sparse" => opts.sparse = true,
            "--output" => opts.output = Some(value("--output")?),
            "--workers" => {
                opts.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
                if opts.workers == 0 {
                    return Err("--workers must be >= 1".into());
                }
            }
            "--transport" => {
                opts.transport = value("--transport")?.to_lowercase();
                if opts.transport != "channel" && opts.transport != "unix" {
                    return Err(format!(
                        "--transport must be channel or unix, got {:?}",
                        opts.transport
                    ));
                }
            }
            "--ampc-mode" => {
                opts.ampc_mode = match value("--ampc-mode")?.to_lowercase().as_str() {
                    "sequenced" => AmpcMode::Sequenced,
                    "relaxed" => AmpcMode::Relaxed,
                    other => {
                        return Err(format!(
                            "--ampc-mode must be sequenced or relaxed, got {other:?}"
                        ))
                    }
                };
            }
            "--ampc-epoch-chunks" => {
                opts.ampc_epoch_chunks = value("--ampc-epoch-chunks")?
                    .parse()
                    .map_err(|e| format!("--ampc-epoch-chunks: {e}"))?;
                if opts.ampc_epoch_chunks == 0 {
                    return Err("--ampc-epoch-chunks must be >= 1".into());
                }
            }
            "--socket-dir" => opts.socket_dir = Some(value("--socket-dir")?),
            "--worker-timeout" => {
                let secs: f64 = value("--worker-timeout")?
                    .parse()
                    .map_err(|e| format!("--worker-timeout: {e}"))?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err("--worker-timeout must be a non-negative number of seconds".into());
                }
                opts.worker_timeout = Some(secs);
            }
            "--max-retries" => {
                opts.max_retries = Some(
                    value("--max-retries")?
                        .parse()
                        .map_err(|e| format!("--max-retries: {e}"))?,
                )
            }
            "--checkpoint-dir" => opts.checkpoint_dir = Some(value("--checkpoint-dir")?),
            "--resume" => opts.resume = true,
            "--trace-out" => opts.trace_out = Some(value("--trace-out")?),
            "--trace-summary" => opts.trace_summary = true,
            "--metrics-out" => opts.metrics_out = Some(value("--metrics-out")?),
            "--net-stats" => opts.net_stats = true,
            "--emit-placement" => opts.emit_placement = Some(value("--emit-placement")?),
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            _ => positional.push(a.clone()),
        }
    }
    match positional.as_slice() {
        [input] => opts.input = input.clone(),
        [] => return Err("missing input file".into()),
        _ => return Err("expected exactly one input file".into()),
    }
    if opts.k == 0 {
        return Err("--k is required and must be >= 1".into());
    }
    if opts.sparse && order_set {
        return Err(
            "--sparse streams in file order (ids are remapped on the fly); \
             --order is not supported with it"
                .into(),
        );
    }
    if opts.sparse && distributed(&opts) {
        return Err("--sparse is not supported with --workers/--transport".into());
    }
    if opts.resume && opts.checkpoint_dir.is_none() {
        return Err("--resume needs --checkpoint-dir to load checkpoints from".into());
    }
    let fault_flags = opts.worker_timeout.is_some()
        || opts.max_retries.is_some()
        || opts.checkpoint_dir.is_some()
        || opts.resume;
    if fault_flags && !distributed(&opts) {
        return Err(
            "--worker-timeout/--max-retries/--checkpoint-dir/--resume apply to \
             distributed runs (--workers > 1 or --transport unix)"
                .into(),
        );
    }
    let ampc_flags = opts.ampc_mode != AmpcMode::Sequenced || opts.ampc_epoch_chunks != 0;
    if ampc_flags && !distributed(&opts) {
        return Err("--ampc-mode/--ampc-epoch-chunks apply to distributed runs \
             (--workers > 1 or --transport unix)"
            .into());
    }
    let obs_flags = opts.trace_out.is_some()
        || opts.trace_summary
        || opts.metrics_out.is_some()
        || opts.net_stats;
    if obs_flags && !distributed(&opts) {
        return Err(
            "--trace-out/--trace-summary/--metrics-out/--net-stats apply to \
             distributed runs (--workers > 1 or --transport unix)"
                .into(),
        );
    }
    Ok(opts)
}

/// Translates the CLI fault-tolerance knobs into the engine's
/// [`DistConfig`]. Distributed runs supervise by default (30 s worker
/// timeout, 2 retries); `--worker-timeout 0` / `--max-retries 0` opt out.
fn dist_config(opts: &Options) -> DistConfig {
    DistConfig {
        workers: opts.workers,
        transport: if opts.transport == "unix" {
            TransportKind::Unix
        } else {
            TransportKind::Channel
        },
        chunk_edges: opts.chunk_size.unwrap_or(0),
        supervise: SuperviseConfig {
            worker_timeout: match opts.worker_timeout {
                Some(secs) => (secs != 0.0).then(|| Duration::from_secs_f64(secs)),
                None => Some(Duration::from_secs(30)),
            },
            max_retries: opts.max_retries.unwrap_or(2),
            ..Default::default()
        },
        checkpoint_dir: opts.checkpoint_dir.as_ref().map(PathBuf::from),
        resume: opts.resume,
        mode: opts.ampc_mode,
        epoch_chunks: opts.ampc_epoch_chunks,
        // --net-stats reads NetStats, which every run collects anyway; only
        // the exporters that need the event record turn recording on.
        trace: opts.trace_out.is_some() || opts.trace_summary || opts.metrics_out.is_some(),
        ..Default::default()
    }
}

/// Whether the run goes through the coordinator/worker engine.
fn distributed(opts: &Options) -> bool {
    opts.workers > 1 || opts.transport == "unix"
}

fn build_partitioner(opts: &Options) -> Result<Box<dyn Partitioner>, String> {
    Ok(match opts.algo.as_str() {
        "clugp" => Box::new(Clugp::new(ClugpConfig {
            tau: opts.tau,
            threads: opts.threads,
            ..Default::default()
        })),
        "hdrf" => Box::new(Hdrf::default()),
        "greedy" => Box::new(Greedy::new()),
        "hashing" => Box::new(Hashing::default()),
        "dbh" => Box::new(Dbh::default()),
        "grid" => Box::new(Grid::default()),
        "mint" => Box::new(Mint::new(MintConfig {
            threads: opts.threads,
            ..Default::default()
        })),
        other => return Err(format!("unknown algorithm {other:?}")),
    })
}

/// The distributed mirror of [`build_partitioner`]: same defaults, same
/// knobs, so either path produces the same partitions.
fn build_dist_algo(opts: &Options) -> Result<DistAlgo, String> {
    Ok(match opts.algo.as_str() {
        "clugp" => DistAlgo::Clugp(ClugpConfig {
            tau: opts.tau,
            threads: opts.threads,
            ..Default::default()
        }),
        "hdrf" => DistAlgo::hdrf(),
        "greedy" => DistAlgo::greedy(),
        "hashing" => DistAlgo::hashing(),
        "dbh" => DistAlgo::dbh(),
        "grid" => DistAlgo::grid(),
        "mint" => DistAlgo::Mint(MintConfig {
            threads: opts.threads,
            ..Default::default()
        }),
        other => return Err(format!("unknown algorithm {other:?}")),
    })
}

fn parse_order(name: &str) -> Result<StreamOrder, String> {
    Ok(match name {
        "bfs" => StreamOrder::Bfs,
        "dfs" => StreamOrder::Dfs,
        "random" => StreamOrder::Random(0x5EED),
        "asis" => StreamOrder::AsIs,
        other => return Err(format!("unknown order {other:?}")),
    })
}

/// Sparse-id mode: the input is a text edge list of arbitrary 64-bit ids.
/// The remap layer compacts them during its build pass (in file order, so
/// internal ids are the first-appearance relabeling), the partitioner runs
/// over internal ids, and the output TSV is translated back to the external
/// ids through the map.
fn run_sparse(opts: &Options) -> Result<(), String> {
    let mut stream =
        open_sparse_edge_stream(Path::new(&opts.input)).map_err(|e| format!("--sparse: {e}"))?;
    let distinct = stream.id_map().len();
    eprintln!(
        "loaded {} (sparse ids): |V|={distinct} distinct, id map {:.1} KiB \
         (order: file)",
        opts.input,
        stream.id_map().memory_bytes() as f64 / 1024.0,
    );
    let mut partitioner = build_partitioner(opts)?;
    let run = partitioner
        .partition(&mut stream, opts.k)
        .map_err(|e| e.to_string())?;
    stream.reset().map_err(|e| e.to_string())?;
    let edges = collect_stream(&mut stream);
    let quality = PartitionQuality::compute(&edges, &run.partitioning);

    println!("algorithm          = {}", partitioner.name());
    println!("k                  = {}", opts.k);
    println!("distinct vertices  = {distinct}");
    println!("replication factor = {:.4}", quality.replication_factor);
    println!("relative balance   = {:.4}", quality.relative_balance);
    println!("mirrors            = {}", quality.mirrors);
    println!("partition time     = {:?}", run.timings.total);
    println!("working memory     = {}", run.memory);

    if let Some(out) = &opts.output {
        let map = stream.id_map();
        let mut w =
            std::io::BufWriter::new(std::fs::File::create(out).map_err(|e| format!("{out}: {e}"))?);
        for (e, p) in edges.iter().zip(&run.partitioning.assignments) {
            // Translate internal ids back to the input's external ids.
            writeln!(
                w,
                "{}\t{}\t{}",
                map.external_of(e.src),
                map.external_of(e.dst),
                p
            )
            .map_err(|e| e.to_string())?;
        }
        w.flush().map_err(|e| e.to_string())?;
        eprintln!("assignment written to {out} (external ids)");
    }
    Ok(())
}

fn run(opts: &Options) -> Result<(), String> {
    if let Some(n) = opts.chunk_size {
        // Process-wide override of the chunk granularity every consumer
        // pulls with; partitions are chunking-invariant.
        clugp_graph::stream::set_chunk_edges(n).map_err(|e| e.to_string())?;
    }
    // Process-wide decode knobs: `open_edge_stream` (here and inside AMPC
    // workers) picks serial vs pipelined pack decode from these.
    clugp_graph::pack::set_decode_options(DecodeOptions {
        threads: opts.decode_threads,
        prefetch: opts.prefetch,
        checksums: opts.checksums,
    });
    if opts.sparse {
        return run_sparse(opts);
    }
    let path = Path::new(&opts.input);
    // Format is sniffed from the magic bytes, never the extension.
    let (n, raw_edges) = match sniff_format(path).map_err(|e| e.to_string())? {
        GraphFileFormat::Binary => read_binary_graph(path).map_err(|e| e.to_string())?,
        GraphFileFormat::Packed => {
            // Serial or pipelined per --decode-threads; both deliver the
            // same chunk sequence, so the partitions cannot differ.
            let mut s = open_edge_stream(path).map_err(|e| e.to_string())?;
            let n = s
                .num_vertices_hint()
                .ok_or_else(|| "pack header is missing its vertex count".to_string())?;
            let edges = collect_stream(s.as_mut());
            s.reset().map_err(|e| e.to_string())?; // surface parked decode errors
            (n, edges)
        }
        GraphFileFormat::Text => {
            let edges = read_edge_list(path).map_err(|e| e.to_string())?;
            (clugp_graph::types::implied_num_vertices(&edges), edges)
        }
    };
    let graph = CsrGraph::from_edges(n, &raw_edges).map_err(|e| e.to_string())?;
    let order = parse_order(&opts.order)?;
    let edges = ordered_edges(&graph, order);
    eprintln!(
        "loaded {}: |V|={n} |E|={} (order: {})",
        opts.input,
        edges.len(),
        opts.order
    );

    let partitioning = if distributed(opts) {
        let algo = build_dist_algo(opts)?;
        let input = DistInput::Edges {
            num_vertices: n,
            edges: &edges,
        };
        let cfg = dist_config(opts);
        let start = Instant::now();
        let out = if opts.transport == "unix" {
            run_multiprocess(&algo, input, opts, &cfg)?
        } else {
            run_distributed(&algo, input, opts.k, &cfg).map_err(|e| e.to_string())?
        };
        let quality = PartitionQuality::compute(&edges, &out.partitioning);
        println!("algorithm          = {}", algo.name());
        println!("k                  = {}", opts.k);
        println!("replication factor = {:.4}", quality.replication_factor);
        println!("relative balance   = {:.4}", quality.relative_balance);
        println!("mirrors            = {}", quality.mirrors);
        println!("partition time     = {:?}", start.elapsed());
        println!("workers            = {} ({})", out.workers, opts.transport);
        println!("ampc mode          = {}", opts.ampc_mode.name());
        println!("recoveries         = {}", out.recoveries);
        println!(
            "bytes exchanged    = {} ({} frames)",
            out.net.bytes_sent, out.net.frames_sent
        );
        report_observability(opts, &out, start.elapsed())?;
        out.partitioning
    } else {
        let mut stream = InMemoryStream::new(n, edges.clone());
        let mut partitioner = build_partitioner(opts)?;
        let run = partitioner
            .partition(&mut stream, opts.k)
            .map_err(|e| e.to_string())?;
        let quality = PartitionQuality::compute(&edges, &run.partitioning);
        println!("algorithm          = {}", partitioner.name());
        println!("k                  = {}", opts.k);
        println!("replication factor = {:.4}", quality.replication_factor);
        println!("relative balance   = {:.4}", quality.relative_balance);
        println!("mirrors            = {}", quality.mirrors);
        println!("partition time     = {:?}", run.timings.total);
        println!("working memory     = {}", run.memory);
        run.partitioning
    };

    if let Some(dir) = &opts.emit_placement {
        emit_placement(Path::new(dir), &edges, &partitioning)?;
        eprintln!("placement written to {dir}");
    }
    if let Some(out) = &opts.output {
        let mut w =
            std::io::BufWriter::new(std::fs::File::create(out).map_err(|e| format!("{out}: {e}"))?);
        for (e, p) in edges.iter().zip(&partitioning.assignments) {
            writeln!(w, "{}\t{}\t{}", e.src, e.dst, p).map_err(|e| e.to_string())?;
        }
        w.flush().map_err(|e| e.to_string())?;
        eprintln!("assignment written to {out}");
    }
    Ok(())
}

/// Emits the post-run observability artifacts the CLI flags asked for:
/// the per-verb traffic table, the metrics snapshot, the Chrome trace, and
/// the human span summary. All of them are derived from [`DistOutcome`]
/// after the partition is already fixed, so none can perturb the result.
fn report_observability(
    opts: &Options,
    out: &clugp::ampc::DistOutcome,
    wall: Duration,
) -> Result<(), String> {
    if opts.net_stats {
        eprint!("{}", net_stats_table(&out.net));
    }
    if opts.metrics_out.is_none() && opts.trace_out.is_none() && !opts.trace_summary {
        return Ok(());
    }
    let metrics = metrics_json(out, wall);
    if let Some(path) = &opts.metrics_out {
        std::fs::write(path, &metrics).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("metrics written to {path}");
    }
    if let Some(path) = &opts.trace_out {
        let json = obs::export::chrome_trace(&out.trace, out.workers, Some(&metrics));
        std::fs::write(path, &json).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("trace written to {path} (load in Perfetto or chrome://tracing)");
    }
    if opts.trace_summary {
        eprint!("{}", obs::export::summary_table(&out.trace));
    }
    Ok(())
}

/// `--net-stats`: one row per wire verb that carried traffic, sent and
/// received combined across every coordinator↔worker link.
fn net_stats_table(net: &clugp::ampc::NetStats) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "{:<14} {:>10} {:>14}", "verb", "frames", "bytes");
    for (tag, tally) in net.by_verb.iter().enumerate() {
        if tally.frames == 0 {
            continue;
        }
        let _ = writeln!(
            s,
            "{:<14} {:>10} {:>14}",
            Msg::verb_name(tag),
            tally.frames,
            tally.bytes
        );
    }
    let _ = writeln!(
        s,
        "{:<14} {:>10} {:>14}",
        "total",
        net.frames_sent + net.frames_received,
        net.bytes_sent + net.bytes_received
    );
    s
}

/// The structured metrics snapshot (`--metrics-out`, and embedded in the
/// Chrome trace under the top-level `clugpMetrics` key).
fn metrics_json(out: &clugp::ampc::DistOutcome, wall: Duration) -> String {
    let rec = &out.trace;
    let passes = obs::json::Obj::new()
        .u64("baselineUs", rec.span_total_us("pass:baseline"))
        .u64("pass1Us", rec.span_total_us("pass:pass1"))
        .u64("pairsUs", rec.span_total_us("pass:pairs"))
        .u64("transformUs", rec.span_total_us("pass:transform"))
        .finish();
    let mut verbs = obs::json::Obj::new();
    for (tag, tally) in out.net.by_verb.iter().enumerate() {
        if tally.frames == 0 {
            continue;
        }
        let entry = obs::json::Obj::new()
            .u64("frames", tally.frames)
            .u64("bytes", tally.bytes)
            .finish();
        verbs = verbs.raw(Msg::verb_name(tag), &entry);
    }
    let checkpoints = obs::json::Obj::new()
        .u64("writes", out.ckpt_writes)
        .u64("writeUs", out.ckpt_write_us)
        .u64("restores", out.ckpt_restores)
        .u64("restoreUs", out.ckpt_restore_us)
        .finish();
    // Epoch drift: one "epoch_sync" instant per relaxed reconcile round,
    // arg = number of drifted table keys merged in that round.
    let sync_rounds = rec.count("epoch_sync") as u64;
    let drift_keys: u64 = rec
        .events
        .iter()
        .filter(|(_, e)| e.name == "epoch_sync")
        .map(|(_, e)| e.arg)
        .sum();
    // Decode stalls: one instant per worker stage that waited on the
    // pipeline, arg = stall microseconds.
    let stall_us: u64 = rec
        .events
        .iter()
        .filter(|(_, e)| e.name == "decode_stall")
        .map(|(_, e)| e.arg)
        .sum();
    obs::json::Obj::new()
        .u64("wallUs", wall.as_micros() as u64)
        .u64("workers", u64::from(out.workers))
        .raw("passes", &passes)
        .raw("bytesByVerb", &verbs.finish())
        .raw("checkpoints", &checkpoints)
        .u64("epochSyncRounds", sync_rounds)
        .u64("epochDriftKeys", drift_keys)
        .u64("retries", u64::from(out.recoveries))
        .u64("respawns", rec.count("respawn") as u64)
        .u64("decodeStallUs", stall_us)
        .u64("droppedEvents", rec.dropped)
        .finish()
}

/// Derives the replica table from the assignment and writes the placement
/// directory (`partition_io::write_placement_dir`).
fn emit_placement(dir: &Path, edges: &[Edge], partitioning: &Partitioning) -> Result<(), String> {
    let mut replicas =
        ReplicaTable::new(partitioning.num_vertices, partitioning.k).map_err(|e| e.to_string())?;
    for (e, &p) in edges.iter().zip(&partitioning.assignments) {
        replicas
            .ensure_vertices(u64::from(e.src.max(e.dst)) + 1)
            .map_err(|e| e.to_string())?;
        replicas.insert(e.src, p);
        replicas.insert(e.dst, p);
    }
    clugp::partition_io::write_placement_dir(dir, partitioning, &replicas)
        .map_err(|e| e.to_string())
}

/// The worker-process fleet for multi-process mode: spawns `--workers`
/// copies of this binary, slots their connections by `Hello{index}`, and
/// — through the coordinator's respawner hook — replaces workers that die
/// mid-run. `Drop` reaps every child it still owns, so no exit path (help
/// text, errors, panics) leaves zombies behind.
struct WorkerFleet {
    exe: PathBuf,
    sock: PathBuf,
    listener: std::os::unix::net::UnixListener,
    children: Vec<Option<std::process::Child>>,
    /// Decode knobs forwarded to every worker process.
    forward: Vec<String>,
    /// `CLUGP_AMPC_KILL_AT="<worker>:<frames>"` — arm worker `<worker>`
    /// (first incarnation only) to die abruptly after receiving
    /// `<frames>` frames. A deterministic crash injection for tests.
    kill_at: Option<(u32, u64)>,
    /// Bound on waiting for a worker to connect and say Hello.
    accept_timeout: Duration,
}

impl WorkerFleet {
    fn new(opts: &Options, dir: &Path, accept_timeout: Duration) -> Result<WorkerFleet, String> {
        // Remove stale sockets from earlier runs that died without
        // cleanup; anything still present in our socket dir is dead weight
        // (we are about to bind the only live one).
        if let Ok(entries) = std::fs::read_dir(dir) {
            for entry in entries.flatten() {
                if entry.path().extension().is_some_and(|x| x == "sock") {
                    std::fs::remove_file(entry.path()).ok();
                }
            }
        }
        let sock = dir.join("coordinator.sock");
        let listener = std::os::unix::net::UnixListener::bind(&sock)
            .map_err(|e| format!("{}: {e}", sock.display()))?;
        // Non-blocking accept: the wait loop polls children, so a worker
        // that dies before saying Hello is reported, not waited on forever.
        listener.set_nonblocking(true).map_err(|e| e.to_string())?;
        // Test hook: substitute the worker executable.
        let exe = match std::env::var_os("CLUGP_AMPC_WORKER_EXE") {
            Some(p) => PathBuf::from(p),
            None => std::env::current_exe().map_err(|e| e.to_string())?,
        };
        let kill_at = std::env::var("CLUGP_AMPC_KILL_AT").ok().and_then(|s| {
            let (w, n) = s.split_once(':')?;
            Some((w.parse().ok()?, n.parse().ok()?))
        });
        // Worker processes don't see our process-wide decode options, so
        // the knobs ride along explicitly.
        let forward = vec![
            "--ampc-decode-threads".into(),
            opts.decode_threads.to_string(),
            "--ampc-prefetch".into(),
            opts.prefetch.to_string(),
            "--ampc-checksums".into(),
            opts.checksums.name().into(),
        ];
        Ok(WorkerFleet {
            exe,
            sock,
            listener,
            children: (0..opts.workers).map(|_| None).collect(),
            forward,
            kill_at,
            accept_timeout,
        })
    }

    fn spawn(&mut self, i: u32, arm_kill: bool) -> Result<(), String> {
        let mut cmd = std::process::Command::new(&self.exe);
        cmd.arg("--ampc-worker")
            .arg(&self.sock)
            .arg("--ampc-index")
            .arg(i.to_string())
            .args(&self.forward);
        if arm_kill {
            if let Some((w, frames)) = self.kill_at {
                if w == i {
                    cmd.arg("--ampc-kill-at").arg(frames.to_string());
                }
            }
        }
        let child = cmd
            .spawn()
            .map_err(|e| format!("spawning worker {i} ({}): {e}", self.exe.display()))?;
        self.children[i as usize] = Some(child);
        Ok(())
    }

    /// Accepts one worker connection and reads its `Hello`, polling child
    /// liveness meanwhile: a worker that exits before connecting fails the
    /// accept immediately, naming the worker and its exit status. `only`
    /// restricts the liveness poll to that child — during a respawn, the
    /// *other* workers may legitimately be dead already (that is what the
    /// recovery is recovering from) and are the supervisor's business, not
    /// this accept's.
    fn accept_one(&mut self, only: Option<u32>) -> Result<(u32, Box<dyn Transport>), String> {
        let deadline = Instant::now() + self.accept_timeout;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false).map_err(|e| e.to_string())?;
                    let mut t = UnixTransport::new(stream);
                    t.set_deadline(Some(self.accept_timeout));
                    let hello = t
                        .recv()
                        .and_then(|f| Msg::decode(&f))
                        .map_err(|e| format!("worker hello: {e}"))?;
                    // The supervisor owns deadlines from here on.
                    t.set_deadline(None);
                    return match hello {
                        Msg::Hello { worker } if (worker as usize) < self.children.len() => {
                            Ok((worker, Box::new(t)))
                        }
                        other => Err(format!("expected Hello, got {}", other.kind())),
                    };
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    let watched: Vec<usize> = match only {
                        Some(i) => vec![i as usize],
                        None => (0..self.children.len()).collect(),
                    };
                    for i in watched {
                        let Some(child) = self.children[i].as_mut() else {
                            continue;
                        };
                        if let Ok(Some(status)) = child.try_wait() {
                            self.children[i] = None;
                            return Err(format!("worker {i} exited before connecting: {status}"));
                        }
                    }
                    if Instant::now() >= deadline {
                        return Err(format!(
                            "timed out after {:?} waiting for a worker to connect",
                            self.accept_timeout
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(format!("accept: {e}")),
            }
        }
    }

    /// Replaces worker `i`: reap whatever is left of the old process,
    /// spawn a fresh one (never re-armed with the kill knob), and wait for
    /// it to connect.
    fn respawn(&mut self, i: u32) -> Result<Box<dyn Transport>, String> {
        if let Some(mut child) = self.children[i as usize].take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        self.spawn(i, false)?;
        let (who, conn) = self.accept_one(Some(i))?;
        if who != i {
            return Err(format!(
                "expected worker {i} to reconnect, got worker {who}"
            ));
        }
        Ok(conn)
    }

    /// Post-run reaping: lets workers that were sent `Shutdown` exit on
    /// their own (briefly), then hard-kills stragglers. Reports surprise
    /// exit codes when the run itself succeeded.
    fn reap(&mut self, run_ok: bool) {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let mut alive = false;
            for i in 0..self.children.len() {
                let Some(child) = self.children[i].as_mut() else {
                    continue;
                };
                match child.try_wait() {
                    Ok(Some(status)) => {
                        if !status.success() && run_ok {
                            eprintln!("warning: worker {i} exited with {status}");
                        }
                        self.children[i] = None;
                    }
                    Ok(None) => alive = true,
                    Err(e) => {
                        eprintln!("warning: waiting for worker {i}: {e}");
                        self.children[i] = None;
                    }
                }
            }
            if !alive || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        // Drop handles anything that ignored Shutdown.
    }
}

impl Drop for WorkerFleet {
    fn drop(&mut self) {
        for slot in &mut self.children {
            if let Some(mut child) = slot.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
        std::fs::remove_file(&self.sock).ok();
    }
}

/// Multi-process mode: spawns `--workers` copies of this binary as worker
/// processes, each connected over a Unix socket with the same
/// length-prefixed framing the in-process unix transport uses. The fleet
/// doubles as the coordinator's respawner, so a worker killed mid-run is
/// replaced by a fresh process and the pass replays from the last barrier
/// checkpoint.
fn run_multiprocess(
    algo: &DistAlgo,
    input: DistInput<'_>,
    opts: &Options,
    cfg: &DistConfig,
) -> Result<clugp::ampc::DistOutcome, String> {
    let own_dir = opts.socket_dir.is_none();
    let dir: PathBuf = match &opts.socket_dir {
        Some(d) => PathBuf::from(d),
        None => std::env::temp_dir().join(format!("clugp-ampc-{}", std::process::id())),
    };
    std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut fleet = WorkerFleet::new(opts, &dir, cfg.supervise.effective_timeout())?;
    for i in 0..opts.workers {
        fleet.spawn(i, true)?;
    }
    // Workers identify themselves with Hello{index}; accept order is
    // arbitrary, the index is what assigns the slot.
    let mut conns: Vec<Option<Box<dyn Transport>>> = (0..opts.workers).map(|_| None).collect();
    for _ in 0..opts.workers {
        let (worker, conn) = fleet.accept_one(None)?;
        if conns[worker as usize].is_some() {
            return Err(format!("worker {worker} connected twice"));
        }
        conns[worker as usize] = Some(conn);
    }
    let conns: Vec<Box<dyn Transport>> = conns.into_iter().map(|c| c.unwrap()).collect();
    let mut respawn = |i: u32| {
        fleet
            .respawn(i)
            .map_err(|e| PartitionError::fault(FaultKind::Disconnected, e))
    };
    let result = run_coordinator(conns, algo, input, opts.k, cfg, Some(&mut respawn))
        .map_err(|e| e.to_string());
    fleet.reap(result.is_ok());
    drop(fleet);
    if own_dir {
        std::fs::remove_dir(&dir).ok();
    }
    result
}

/// Deterministic crash injection for the worker side: forwards frames
/// until `remaining` inbound frames have been consumed, then dies as
/// abruptly as SIGKILL would — no unwinding, no `Err` frame, the
/// coordinator sees only a dead link. Frame ordinals are deterministic,
/// so the crash lands at the same protocol point every run.
struct KillAtTransport {
    inner: UnixTransport,
    remaining: u64,
}

impl Transport for KillAtTransport {
    fn send(&mut self, frame: &[u8]) -> clugp::error::Result<()> {
        self.inner.send(frame)
    }

    fn recv(&mut self) -> clugp::error::Result<Vec<u8>> {
        let frame = self.inner.recv()?;
        self.remaining = self.remaining.saturating_sub(1);
        if self.remaining == 0 {
            std::process::abort();
        }
        Ok(frame)
    }

    fn set_deadline(&mut self, timeout: Option<Duration>) {
        self.inner.set_deadline(timeout);
    }

    fn stats(&self) -> NetStats {
        self.inner.stats()
    }
}

/// Hidden child mode: connect to the coordinator socket, introduce
/// ourselves, and serve stages until `Shutdown`.
fn run_ampc_worker(socket: &str, index: u32, kill_at: Option<u64>) -> Result<(), String> {
    let stream =
        std::os::unix::net::UnixStream::connect(socket).map_err(|e| format!("{socket}: {e}"))?;
    let mut t = UnixTransport::new(stream);
    t.send(&Msg::Hello { worker: index }.encode())
        .map_err(|e| e.to_string())?;
    match kill_at {
        Some(frames) => run_worker(Box::new(KillAtTransport {
            inner: t,
            remaining: frames,
        })),
        None => run_worker(Box::new(t)),
    }
    .map_err(|e| e.to_string())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Hidden worker-process mode (spawned by --transport unix).
    if let Some(at) = args.iter().position(|a| a == "--ampc-worker") {
        let socket = args.get(at + 1).cloned();
        let lookup = |flag: &str| {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
        };
        let index = lookup("--ampc-index").and_then(|v| v.parse::<u32>().ok());
        let kill_at = lookup("--ampc-kill-at").and_then(|v| v.parse::<u64>().ok());
        // Decode knobs forwarded by the parent (absent when spawned by an
        // older parent: defaults apply).
        let mut decode = DecodeOptions::default();
        if let Some(t) = lookup("--ampc-decode-threads").and_then(|v| v.parse::<usize>().ok()) {
            decode.threads = t;
        }
        if let Some(d) = lookup("--ampc-prefetch").and_then(|v| v.parse::<usize>().ok()) {
            decode.prefetch = d.max(1);
        }
        if let Some(p) = lookup("--ampc-checksums").and_then(|v| v.parse().ok()) {
            decode.checksums = p;
        }
        clugp_graph::pack::set_decode_options(decode);
        return match (socket, index) {
            (Some(socket), Some(index)) => match run_ampc_worker(&socket, index, kill_at) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("worker {index}: {e}");
                    ExitCode::FAILURE
                }
            },
            _ => {
                eprintln!("error: --ampc-worker needs a socket path and --ampc-index <i>");
                ExitCode::from(2)
            }
        };
    }
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: clugp-part <edges-file> --k <K> [--algo clugp|hdrf|greedy|hashing|dbh|mint|grid] \
             [--order bfs|dfs|random|asis] [--tau F] [--threads N] [--chunk-size N] \
             [--decode-threads N] [--prefetch D] [--checksums full|header|off] [--sparse] \
             [--output file] [--workers N] [--transport channel|unix] [--socket-dir dir] \
             [--ampc-mode sequenced|relaxed] [--ampc-epoch-chunks N] \
             [--worker-timeout S] [--max-retries N] [--checkpoint-dir dir] [--resume] \
             [--trace-out file] [--trace-summary] [--metrics-out file] [--net-stats] \
             [--emit-placement dir]"
        );
        return ExitCode::from(2);
    }
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_minimal_invocation() {
        let o = parse_args(&strs(&["graph.txt", "--k", "8"])).unwrap();
        assert_eq!(o.input, "graph.txt");
        assert_eq!(o.k, 8);
        assert_eq!(o.algo, "clugp");
        assert_eq!(o.order, "bfs");
    }

    #[test]
    fn parses_all_flags() {
        let o = parse_args(&strs(&[
            "--algo",
            "HDRF",
            "--order",
            "random",
            "--tau",
            "1.05",
            "--threads",
            "4",
            "--output",
            "out.tsv",
            "g.bin",
            "--k",
            "16",
        ]))
        .unwrap();
        assert_eq!(o.algo, "hdrf");
        assert_eq!(o.order, "random");
        assert_eq!(o.tau, 1.05);
        assert_eq!(o.threads, 4);
        assert_eq!(o.output.as_deref(), Some("out.tsv"));
        assert_eq!(o.k, 16);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&strs(&["--k", "8"])).is_err()); // no file
        assert!(parse_args(&strs(&["g.txt"])).is_err()); // no k
        assert!(parse_args(&strs(&["g.txt", "--k", "0"])).is_err());
        assert!(parse_args(&strs(&["g.txt", "--k", "4", "--bogus"])).is_err());
        assert!(parse_args(&strs(&["a.txt", "b.txt", "--k", "4"])).is_err());
    }

    #[test]
    fn algorithm_roster_builds() {
        for algo in ["clugp", "hdrf", "greedy", "hashing", "dbh", "mint", "grid"] {
            let opts = Options {
                input: "x".into(),
                k: 4,
                algo: algo.into(),
                ..Options::default()
            };
            assert!(build_partitioner(&opts).is_ok(), "{algo}");
        }
        let bad = Options {
            input: "x".into(),
            k: 4,
            algo: "metis".into(),
            ..Options::default()
        };
        assert!(build_partitioner(&bad).is_err());
    }

    #[test]
    fn order_names() {
        assert!(matches!(parse_order("bfs"), Ok(StreamOrder::Bfs)));
        assert!(matches!(parse_order("dfs"), Ok(StreamOrder::Dfs)));
        assert!(matches!(parse_order("asis"), Ok(StreamOrder::AsIs)));
        assert!(parse_order("sorted").is_err());
    }

    #[test]
    fn end_to_end_on_temp_file() {
        let dir = std::env::temp_dir().join("clugp_part_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.txt");
        let output = dir.join("out.tsv");
        std::fs::write(&input, "0 1\n1 2\n2 0\n2 3\n").unwrap();
        let opts = Options {
            input: input.to_string_lossy().into_owned(),
            k: 2,
            order: "asis".into(),
            tau: 1.5,
            threads: 1,
            output: Some(output.to_string_lossy().into_owned()),
            ..Options::default()
        };
        run(&opts).unwrap();
        let written = std::fs::read_to_string(&output).unwrap();
        assert_eq!(written.lines().count(), 4);
        for line in written.lines() {
            let cols: Vec<&str> = line.split('\t').collect();
            assert_eq!(cols.len(), 3);
            let p: u32 = cols[2].parse().unwrap();
            assert!(p < 2);
        }
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&output).ok();
    }

    #[test]
    fn sparse_mode_round_trips_external_ids() {
        let dir = std::env::temp_dir().join("clugp_part_cli_sparse_test");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.txt");
        let output = dir.join("out.tsv");
        // Hashed-URL-style ids, far outside u32.
        std::fs::write(
            &input,
            "18446744073709551615 9000000000\n9000000000 1099511627776\n1099511627776 18446744073709551615\n",
        )
        .unwrap();
        let opts = Options {
            input: input.to_string_lossy().into_owned(),
            k: 2,
            algo: "hdrf".into(),
            threads: 1,
            sparse: true,
            output: Some(output.to_string_lossy().into_owned()),
            ..Options::default()
        };
        run(&opts).unwrap();
        let written = std::fs::read_to_string(&output).unwrap();
        let lines: Vec<&str> = written.lines().collect();
        assert_eq!(lines.len(), 3);
        // External ids round-trip into the output, in file order.
        let first: Vec<&str> = lines[0].split('\t').collect();
        assert_eq!(first[0], "18446744073709551615");
        assert_eq!(first[1], "9000000000");
        assert!(first[2].parse::<u32>().unwrap() < 2);
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&output).ok();
    }

    #[test]
    fn sparse_flag_parses_and_rejects_explicit_order() {
        let o = parse_args(&strs(&["g.txt", "--k", "4", "--sparse"])).unwrap();
        assert!(o.sparse);
        // Sparse mode streams in file order; an explicit --order would be
        // silently ignored, so it is a usage error instead.
        let err = parse_args(&strs(&[
            "g.txt", "--k", "4", "--sparse", "--order", "random",
        ]))
        .unwrap_err();
        assert!(err.contains("--order"), "{err}");
    }

    #[test]
    fn chunk_size_flag_parses_and_rejects_zero() {
        let o = parse_args(&strs(&["g.txt", "--k", "4", "--chunk-size", "512"])).unwrap();
        assert_eq!(o.chunk_size, Some(512));
        let err = parse_args(&strs(&["g.txt", "--k", "4", "--chunk-size", "0"])).unwrap_err();
        assert!(err.contains("--chunk-size"), "{err}");
        assert!(parse_args(&strs(&["g.txt", "--k", "4", "--chunk-size", "x"])).is_err());
    }

    #[test]
    fn decode_pipeline_flags_parse_and_reject_zero() {
        let o = parse_args(&strs(&[
            "g.txt",
            "--k",
            "4",
            "--decode-threads",
            "3",
            "--prefetch",
            "8",
            "--checksums",
            "header",
        ]))
        .unwrap();
        assert_eq!(o.decode_threads, 3);
        assert_eq!(o.prefetch, 8);
        assert_eq!(o.checksums, ChecksumPolicy::HeaderAndIndex);

        // Defaults: serial decode, standard prefetch, full verification.
        let o = parse_args(&strs(&["g.txt", "--k", "4"])).unwrap();
        assert_eq!(o.decode_threads, 0);
        assert_eq!(o.prefetch, DEFAULT_PREFETCH_BLOCKS);
        assert_eq!(o.checksums, ChecksumPolicy::Full);

        let err = parse_args(&strs(&["g.txt", "--k", "4", "--decode-threads", "0"])).unwrap_err();
        assert!(err.contains("--decode-threads"), "{err}");
        let err = parse_args(&strs(&["g.txt", "--k", "4", "--prefetch", "0"])).unwrap_err();
        assert!(err.contains("--prefetch"), "{err}");
        let err = parse_args(&strs(&["g.txt", "--k", "4", "--checksums", "some"])).unwrap_err();
        assert!(err.contains("checksum"), "{err}");
    }

    #[test]
    fn packed_input_is_detected_by_magic_and_partitions() {
        use clugp_graph::pack::{write_pack, PackOptions};
        use clugp_graph::types::Edge;
        let dir = std::env::temp_dir().join("clugp_part_cli_packed_test");
        std::fs::create_dir_all(&dir).unwrap();
        // Deliberately misleading extension: detection is magic-based.
        let input = dir.join("in.txt");
        let output = dir.join("out.tsv");
        let edges = vec![
            Edge::new(0, 1),
            Edge::new(0, 2),
            Edge::new(1, 2),
            Edge::new(2, 3),
        ];
        write_pack(&input, 4, &edges, &PackOptions::default()).unwrap();
        let opts = Options {
            input: input.to_string_lossy().into_owned(),
            k: 2,
            algo: "hdrf".into(),
            order: "asis".into(),
            threads: 1,
            chunk_size: Some(2), // exercise the override end to end
            decode_threads: 2,   // and the staged decode pipeline
            prefetch: 2,
            output: Some(output.to_string_lossy().into_owned()),
            ..Options::default()
        };
        run(&opts).unwrap();
        // Restore the defaults so concurrently running tests keep the
        // standard granularity and serial decode.
        clugp_graph::stream::set_chunk_edges(clugp_graph::stream::DEFAULT_CHUNK_EDGES).unwrap();
        clugp_graph::pack::set_decode_options(DecodeOptions::default());
        let written = std::fs::read_to_string(&output).unwrap();
        assert_eq!(written.lines().count(), 4);
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&output).ok();
    }

    #[test]
    fn sparse_mode_rejects_packed_input() {
        use clugp_graph::pack::{write_pack, PackOptions};
        use clugp_graph::types::Edge;
        let dir = std::env::temp_dir().join("clugp_part_cli_sparse_packed");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.clugpz");
        write_pack(&input, 2, &[Edge::new(0, 1)], &PackOptions::default()).unwrap();
        let opts = Options {
            input: input.to_string_lossy().into_owned(),
            k: 2,
            algo: "hdrf".into(),
            threads: 1,
            sparse: true,
            ..Options::default()
        };
        let err = run(&opts).unwrap_err();
        assert!(err.contains("--sparse"), "{err}");
        std::fs::remove_file(&input).ok();
    }

    #[test]
    fn distributed_flags_parse_and_validate() {
        let o = parse_args(&strs(&["g.txt", "--k", "4", "--workers", "3"])).unwrap();
        assert_eq!(o.workers, 3);
        assert!(distributed(&o));
        let o = parse_args(&strs(&["g.txt", "--k", "4", "--transport", "unix"])).unwrap();
        assert_eq!(o.transport, "unix");
        assert!(distributed(&o)); // unix always goes multi-process
        let o = parse_args(&strs(&["g.txt", "--k", "4"])).unwrap();
        assert!(!distributed(&o));

        let err = parse_args(&strs(&["g.txt", "--k", "4", "--workers", "0"])).unwrap_err();
        assert!(err.contains("--workers"), "{err}");
        let err = parse_args(&strs(&["g.txt", "--k", "4", "--transport", "tcp"])).unwrap_err();
        assert!(err.contains("--transport"), "{err}");
        let err =
            parse_args(&strs(&["g.txt", "--k", "4", "--sparse", "--workers", "2"])).unwrap_err();
        assert!(err.contains("--sparse"), "{err}");
    }

    #[test]
    fn ampc_mode_flags_parse_and_validate() {
        let o = parse_args(&strs(&[
            "g.txt",
            "--k",
            "4",
            "--workers",
            "2",
            "--ampc-mode",
            "relaxed",
        ]))
        .unwrap();
        assert_eq!(o.ampc_mode, AmpcMode::Relaxed);
        assert_eq!(o.ampc_epoch_chunks, 0);
        assert_eq!(dist_config(&o).mode, AmpcMode::Relaxed);

        let o = parse_args(&strs(&[
            "g.txt",
            "--k",
            "4",
            "--workers",
            "2",
            "--ampc-mode",
            "sequenced",
            "--ampc-epoch-chunks",
            "4",
        ]))
        .unwrap();
        assert_eq!(o.ampc_mode, AmpcMode::Sequenced);
        assert_eq!(o.ampc_epoch_chunks, 4);
        assert_eq!(dist_config(&o).epoch_chunks, 4);

        let err = parse_args(&strs(&[
            "g.txt",
            "--k",
            "4",
            "--workers",
            "2",
            "--ampc-mode",
            "eventual",
        ]))
        .unwrap_err();
        assert!(err.contains("--ampc-mode"), "{err}");
        let err = parse_args(&strs(&[
            "g.txt",
            "--k",
            "4",
            "--workers",
            "2",
            "--ampc-epoch-chunks",
            "0",
        ]))
        .unwrap_err();
        assert!(err.contains("--ampc-epoch-chunks"), "{err}");
        // Both knobs require a distributed run.
        let err = parse_args(&strs(&["g.txt", "--k", "4", "--ampc-mode", "relaxed"])).unwrap_err();
        assert!(err.contains("distributed"), "{err}");
    }

    #[test]
    fn trace_flags_parse_and_validate() {
        let o = parse_args(&strs(&[
            "g.txt",
            "--k",
            "4",
            "--workers",
            "2",
            "--trace-out",
            "t.json",
            "--trace-summary",
            "--metrics-out",
            "m.json",
            "--net-stats",
        ]))
        .unwrap();
        assert_eq!(o.trace_out.as_deref(), Some("t.json"));
        assert!(o.trace_summary);
        assert_eq!(o.metrics_out.as_deref(), Some("m.json"));
        assert!(o.net_stats);
        assert!(dist_config(&o).trace);

        // --net-stats reads NetStats only; it must not flip recording on.
        let o = parse_args(&strs(&[
            "g.txt",
            "--k",
            "4",
            "--workers",
            "2",
            "--net-stats",
        ]))
        .unwrap();
        assert!(o.net_stats);
        assert!(!dist_config(&o).trace);

        // Every observability flag needs a distributed run.
        for flags in [
            &["--trace-out", "t.json"][..],
            &["--trace-summary"][..],
            &["--metrics-out", "m.json"][..],
            &["--net-stats"][..],
        ] {
            let mut args = strs(&["g.txt", "--k", "4"]);
            args.extend(flags.iter().map(|s| s.to_string()));
            let err = parse_args(&args).unwrap_err();
            assert!(err.contains("distributed"), "{flags:?}: {err}");
        }
    }

    #[test]
    fn traced_channel_run_is_bit_identical_and_emits_valid_artifacts() {
        let dir = std::env::temp_dir().join("clugp_part_cli_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.txt");
        std::fs::write(&input, "0 1\n1 2\n2 0\n2 3\n3 4\n4 0\n1 3\n0 4\n").unwrap();
        let plain_tsv = dir.join("plain.tsv");
        let traced_tsv = dir.join("traced.tsv");
        let trace = dir.join("trace.json");
        let metrics = dir.join("metrics.json");
        let base = Options {
            input: input.to_string_lossy().into_owned(),
            k: 2,
            algo: "hdrf".into(),
            order: "asis".into(),
            threads: 1,
            workers: 3,
            output: Some(plain_tsv.to_string_lossy().into_owned()),
            ..Options::default()
        };
        run(&base).unwrap();
        let traced = Options {
            output: Some(traced_tsv.to_string_lossy().into_owned()),
            trace_out: Some(trace.to_string_lossy().into_owned()),
            metrics_out: Some(metrics.to_string_lossy().into_owned()),
            trace_summary: true,
            net_stats: true,
            ..base
        };
        run(&traced).unwrap();
        assert_eq!(
            std::fs::read_to_string(&plain_tsv).unwrap(),
            std::fs::read_to_string(&traced_tsv).unwrap(),
            "tracing must not change the partition"
        );
        let json = std::fs::read_to_string(&trace).unwrap();
        obs::json::validate(&json).unwrap_or_else(|e| panic!("trace not valid JSON: {e}"));
        // Coordinator pass span, worker stage spans, and per-chunk routing
        // all made it into the merged record.
        assert!(
            json.contains("\"pass:baseline\""),
            "coordinator span missing"
        );
        assert!(json.contains("\"stage:baseline\""), "worker span missing");
        assert!(json.contains("\"route_batch\""), "routing span missing");
        assert!(
            json.contains("\"clugpMetrics\""),
            "embedded metrics missing"
        );
        let mjson = std::fs::read_to_string(&metrics).unwrap();
        obs::json::validate(&mjson).unwrap_or_else(|e| panic!("metrics not valid JSON: {e}"));
        assert!(mjson.contains("\"bytesByVerb\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn emit_placement_flag_parses() {
        let o = parse_args(&strs(&[
            "g.txt",
            "--k",
            "4",
            "--emit-placement",
            "place_dir",
        ]))
        .unwrap();
        assert_eq!(o.emit_placement.as_deref(), Some("place_dir"));
    }

    #[test]
    fn distributed_channel_run_matches_monolith_and_emits_placement() {
        let dir = std::env::temp_dir().join("clugp_part_cli_dist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.txt");
        std::fs::write(&input, "0 1\n1 2\n2 0\n2 3\n3 4\n4 0\n1 3\n").unwrap();
        let mono_out = dir.join("mono.tsv");
        let dist_out = dir.join("dist.tsv");
        let placement = dir.join("placement");
        let base = Options {
            input: input.to_string_lossy().into_owned(),
            k: 2,
            algo: "hdrf".into(),
            order: "asis".into(),
            threads: 1,
            output: Some(mono_out.to_string_lossy().into_owned()),
            ..Options::default()
        };
        run(&base).unwrap();
        let dist = Options {
            workers: 3,
            output: Some(dist_out.to_string_lossy().into_owned()),
            emit_placement: Some(placement.to_string_lossy().into_owned()),
            ..base
        };
        run(&dist).unwrap();
        assert_eq!(
            std::fs::read_to_string(&mono_out).unwrap(),
            std::fs::read_to_string(&dist_out).unwrap(),
            "3-worker channel run must be bit-identical to the monolith"
        );
        let (p, replicas) = clugp::partition_io::read_placement_dir(&placement).unwrap();
        assert_eq!(p.k, 2);
        assert_eq!(p.assignments.len(), 7);
        // Every edge endpoint must be replicated on its edge's partition.
        let text = std::fs::read_to_string(&input).unwrap();
        for (line, &part) in text.lines().zip(&p.assignments) {
            let mut it = line.split_whitespace();
            let s: u32 = it.next().unwrap().parse().unwrap();
            let d: u32 = it.next().unwrap().parse().unwrap();
            for v in [s, d] {
                assert!(
                    replicas.partitions_of(v).any(|q| q == part),
                    "vertex {v} missing replica on partition {part}"
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
