//! `clugp-part` — command-line vertex-cut partitioning.
//!
//! ```text
//! clugp-part <edges-file> --k <K> [options]
//!
//! <edges-file>      text edge list ("src dst" per line, # comments), the
//!                   flat binary format (CLUGPGR1), or a compressed pack
//!                   (CLUGPZ01, written by clugp-pack) — detected by magic
//!                   bytes, never by extension
//! --k <K>           number of partitions (required)
//! --algo <name>     clugp (default) | hdrf | greedy | hashing | dbh | mint | grid
//! --order <name>    bfs (default) | dfs | random | asis
//! --tau <float>     CLUGP imbalance factor (default 1.0)
//! --threads <N>     CLUGP/Mint worker threads (default: all cores)
//! --chunk-size <N>  edges per stream chunk pull (default 4096); a tuning
//!                   knob only — partitions are chunking-invariant
//! --sparse          treat the input as a text edge list with arbitrary
//!                   (sparse) 64-bit vertex ids — hashed URLs, crawl ids —
//!                   remapped onto the dense internal space during the
//!                   first pass; output is translated back to the external
//!                   ids. Streams in file order.
//! --output <file>   write per-edge assignment as "src dst partition" TSV
//! ```

use clugp::baselines::{Dbh, Greedy, Grid, Hashing, Hdrf, Mint, MintConfig};
use clugp::clugp::{Clugp, ClugpConfig};
use clugp::metrics::PartitionQuality;
use clugp::partitioner::Partitioner;
use clugp_graph::csr::CsrGraph;
use clugp_graph::io::binary::read_binary_graph;
use clugp_graph::io::edge_list::read_edge_list;
use clugp_graph::io::{open_sparse_edge_stream, sniff_format, GraphFileFormat};
use clugp_graph::order::{ordered_edges, StreamOrder};
use clugp_graph::pack::PackedEdgeStream;
use clugp_graph::stream::{collect_stream, InMemoryStream, RestreamableStream};
use std::io::Write;
use std::path::Path;
use std::process::ExitCode;

#[derive(Debug, Clone)]
struct Options {
    input: String,
    k: u32,
    algo: String,
    order: String,
    tau: f64,
    threads: usize,
    chunk_size: Option<usize>,
    sparse: bool,
    output: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        input: String::new(),
        k: 0,
        algo: "clugp".into(),
        order: "bfs".into(),
        tau: 1.0,
        threads: 0,
        chunk_size: None,
        sparse: false,
        output: None,
    };
    let mut it = args.iter().peekable();
    let mut positional = Vec::new();
    let mut order_set = false;
    while let Some(a) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match a.as_str() {
            "--k" => opts.k = value("--k")?.parse().map_err(|e| format!("--k: {e}"))?,
            "--algo" => opts.algo = value("--algo")?.to_lowercase(),
            "--order" => {
                opts.order = value("--order")?.to_lowercase();
                order_set = true;
            }
            "--tau" => opts.tau = value("--tau")?.parse().map_err(|e| format!("--tau: {e}"))?,
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--chunk-size" => {
                let n: usize = value("--chunk-size")?
                    .parse()
                    .map_err(|e| format!("--chunk-size: {e}"))?;
                if n == 0 {
                    return Err(
                        "--chunk-size must be >= 1 (a zero chunk would read as exhaustion)".into(),
                    );
                }
                opts.chunk_size = Some(n);
            }
            "--sparse" => opts.sparse = true,
            "--output" => opts.output = Some(value("--output")?),
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            _ => positional.push(a.clone()),
        }
    }
    match positional.as_slice() {
        [input] => opts.input = input.clone(),
        [] => return Err("missing input file".into()),
        _ => return Err("expected exactly one input file".into()),
    }
    if opts.k == 0 {
        return Err("--k is required and must be >= 1".into());
    }
    if opts.sparse && order_set {
        return Err(
            "--sparse streams in file order (ids are remapped on the fly); \
             --order is not supported with it"
                .into(),
        );
    }
    Ok(opts)
}

fn build_partitioner(opts: &Options) -> Result<Box<dyn Partitioner>, String> {
    Ok(match opts.algo.as_str() {
        "clugp" => Box::new(Clugp::new(ClugpConfig {
            tau: opts.tau,
            threads: opts.threads,
            ..Default::default()
        })),
        "hdrf" => Box::new(Hdrf::default()),
        "greedy" => Box::new(Greedy::new()),
        "hashing" => Box::new(Hashing::default()),
        "dbh" => Box::new(Dbh::default()),
        "grid" => Box::new(Grid::default()),
        "mint" => Box::new(Mint::new(MintConfig {
            threads: opts.threads,
            ..Default::default()
        })),
        other => return Err(format!("unknown algorithm {other:?}")),
    })
}

fn parse_order(name: &str) -> Result<StreamOrder, String> {
    Ok(match name {
        "bfs" => StreamOrder::Bfs,
        "dfs" => StreamOrder::Dfs,
        "random" => StreamOrder::Random(0x5EED),
        "asis" => StreamOrder::AsIs,
        other => return Err(format!("unknown order {other:?}")),
    })
}

/// Sparse-id mode: the input is a text edge list of arbitrary 64-bit ids.
/// The remap layer compacts them during its build pass (in file order, so
/// internal ids are the first-appearance relabeling), the partitioner runs
/// over internal ids, and the output TSV is translated back to the external
/// ids through the map.
fn run_sparse(opts: &Options) -> Result<(), String> {
    let mut stream =
        open_sparse_edge_stream(Path::new(&opts.input)).map_err(|e| format!("--sparse: {e}"))?;
    let distinct = stream.id_map().len();
    eprintln!(
        "loaded {} (sparse ids): |V|={distinct} distinct, id map {:.1} KiB \
         (order: file)",
        opts.input,
        stream.id_map().memory_bytes() as f64 / 1024.0,
    );
    let mut partitioner = build_partitioner(opts)?;
    let run = partitioner
        .partition(&mut stream, opts.k)
        .map_err(|e| e.to_string())?;
    stream.reset().map_err(|e| e.to_string())?;
    let edges = collect_stream(&mut stream);
    let quality = PartitionQuality::compute(&edges, &run.partitioning);

    println!("algorithm          = {}", partitioner.name());
    println!("k                  = {}", opts.k);
    println!("distinct vertices  = {distinct}");
    println!("replication factor = {:.4}", quality.replication_factor);
    println!("relative balance   = {:.4}", quality.relative_balance);
    println!("mirrors            = {}", quality.mirrors);
    println!("partition time     = {:?}", run.timings.total);
    println!("working memory     = {}", run.memory);

    if let Some(out) = &opts.output {
        let map = stream.id_map();
        let mut w =
            std::io::BufWriter::new(std::fs::File::create(out).map_err(|e| format!("{out}: {e}"))?);
        for (e, p) in edges.iter().zip(&run.partitioning.assignments) {
            // Translate internal ids back to the input's external ids.
            writeln!(
                w,
                "{}\t{}\t{}",
                map.external_of(e.src),
                map.external_of(e.dst),
                p
            )
            .map_err(|e| e.to_string())?;
        }
        w.flush().map_err(|e| e.to_string())?;
        eprintln!("assignment written to {out} (external ids)");
    }
    Ok(())
}

fn run(opts: &Options) -> Result<(), String> {
    if let Some(n) = opts.chunk_size {
        // Process-wide override of the chunk granularity every consumer
        // pulls with; partitions are chunking-invariant.
        clugp_graph::stream::set_chunk_edges(n).map_err(|e| e.to_string())?;
    }
    if opts.sparse {
        return run_sparse(opts);
    }
    let path = Path::new(&opts.input);
    // Format is sniffed from the magic bytes, never the extension.
    let (n, raw_edges) = match sniff_format(path).map_err(|e| e.to_string())? {
        GraphFileFormat::Binary => read_binary_graph(path).map_err(|e| e.to_string())?,
        GraphFileFormat::Packed => {
            let mut s = PackedEdgeStream::open(path).map_err(|e| e.to_string())?;
            let n = s.header().num_vertices;
            let edges = collect_stream(&mut s);
            s.reset().map_err(|e| e.to_string())?; // surface parked decode errors
            (n, edges)
        }
        GraphFileFormat::Text => {
            let edges = read_edge_list(path).map_err(|e| e.to_string())?;
            (clugp_graph::types::implied_num_vertices(&edges), edges)
        }
    };
    let graph = CsrGraph::from_edges(n, &raw_edges).map_err(|e| e.to_string())?;
    let order = parse_order(&opts.order)?;
    let edges = ordered_edges(&graph, order);
    eprintln!(
        "loaded {}: |V|={n} |E|={} (order: {})",
        opts.input,
        edges.len(),
        opts.order
    );

    let mut stream = InMemoryStream::new(n, edges.clone());
    let mut partitioner = build_partitioner(opts)?;
    let run = partitioner
        .partition(&mut stream, opts.k)
        .map_err(|e| e.to_string())?;
    let quality = PartitionQuality::compute(&edges, &run.partitioning);

    println!("algorithm          = {}", partitioner.name());
    println!("k                  = {}", opts.k);
    println!("replication factor = {:.4}", quality.replication_factor);
    println!("relative balance   = {:.4}", quality.relative_balance);
    println!("mirrors            = {}", quality.mirrors);
    println!("partition time     = {:?}", run.timings.total);
    println!("working memory     = {}", run.memory);

    if let Some(out) = &opts.output {
        let mut w =
            std::io::BufWriter::new(std::fs::File::create(out).map_err(|e| format!("{out}: {e}"))?);
        for (e, p) in edges.iter().zip(&run.partitioning.assignments) {
            writeln!(w, "{}\t{}\t{}", e.src, e.dst, p).map_err(|e| e.to_string())?;
        }
        w.flush().map_err(|e| e.to_string())?;
        eprintln!("assignment written to {out}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: clugp-part <edges-file> --k <K> [--algo clugp|hdrf|greedy|hashing|dbh|mint|grid] \
             [--order bfs|dfs|random|asis] [--tau F] [--threads N] [--chunk-size N] [--sparse] \
             [--output file]"
        );
        return ExitCode::from(2);
    }
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_minimal_invocation() {
        let o = parse_args(&strs(&["graph.txt", "--k", "8"])).unwrap();
        assert_eq!(o.input, "graph.txt");
        assert_eq!(o.k, 8);
        assert_eq!(o.algo, "clugp");
        assert_eq!(o.order, "bfs");
    }

    #[test]
    fn parses_all_flags() {
        let o = parse_args(&strs(&[
            "--algo",
            "HDRF",
            "--order",
            "random",
            "--tau",
            "1.05",
            "--threads",
            "4",
            "--output",
            "out.tsv",
            "g.bin",
            "--k",
            "16",
        ]))
        .unwrap();
        assert_eq!(o.algo, "hdrf");
        assert_eq!(o.order, "random");
        assert_eq!(o.tau, 1.05);
        assert_eq!(o.threads, 4);
        assert_eq!(o.output.as_deref(), Some("out.tsv"));
        assert_eq!(o.k, 16);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&strs(&["--k", "8"])).is_err()); // no file
        assert!(parse_args(&strs(&["g.txt"])).is_err()); // no k
        assert!(parse_args(&strs(&["g.txt", "--k", "0"])).is_err());
        assert!(parse_args(&strs(&["g.txt", "--k", "4", "--bogus"])).is_err());
        assert!(parse_args(&strs(&["a.txt", "b.txt", "--k", "4"])).is_err());
    }

    #[test]
    fn algorithm_roster_builds() {
        for algo in ["clugp", "hdrf", "greedy", "hashing", "dbh", "mint", "grid"] {
            let opts = Options {
                input: "x".into(),
                k: 4,
                algo: algo.into(),
                order: "bfs".into(),
                tau: 1.0,
                threads: 0,
                chunk_size: None,
                sparse: false,
                output: None,
            };
            assert!(build_partitioner(&opts).is_ok(), "{algo}");
        }
        let bad = Options {
            input: "x".into(),
            k: 4,
            algo: "metis".into(),
            order: "bfs".into(),
            tau: 1.0,
            threads: 0,
            chunk_size: None,
            sparse: false,
            output: None,
        };
        assert!(build_partitioner(&bad).is_err());
    }

    #[test]
    fn order_names() {
        assert!(matches!(parse_order("bfs"), Ok(StreamOrder::Bfs)));
        assert!(matches!(parse_order("dfs"), Ok(StreamOrder::Dfs)));
        assert!(matches!(parse_order("asis"), Ok(StreamOrder::AsIs)));
        assert!(parse_order("sorted").is_err());
    }

    #[test]
    fn end_to_end_on_temp_file() {
        let dir = std::env::temp_dir().join("clugp_part_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.txt");
        let output = dir.join("out.tsv");
        std::fs::write(&input, "0 1\n1 2\n2 0\n2 3\n").unwrap();
        let opts = Options {
            input: input.to_string_lossy().into_owned(),
            k: 2,
            algo: "clugp".into(),
            order: "asis".into(),
            tau: 1.5,
            threads: 1,
            chunk_size: None,
            sparse: false,
            output: Some(output.to_string_lossy().into_owned()),
        };
        run(&opts).unwrap();
        let written = std::fs::read_to_string(&output).unwrap();
        assert_eq!(written.lines().count(), 4);
        for line in written.lines() {
            let cols: Vec<&str> = line.split('\t').collect();
            assert_eq!(cols.len(), 3);
            let p: u32 = cols[2].parse().unwrap();
            assert!(p < 2);
        }
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&output).ok();
    }

    #[test]
    fn sparse_mode_round_trips_external_ids() {
        let dir = std::env::temp_dir().join("clugp_part_cli_sparse_test");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.txt");
        let output = dir.join("out.tsv");
        // Hashed-URL-style ids, far outside u32.
        std::fs::write(
            &input,
            "18446744073709551615 9000000000\n9000000000 1099511627776\n1099511627776 18446744073709551615\n",
        )
        .unwrap();
        let opts = Options {
            input: input.to_string_lossy().into_owned(),
            k: 2,
            algo: "hdrf".into(),
            order: "bfs".into(),
            tau: 1.0,
            threads: 1,
            chunk_size: None,
            sparse: true,
            output: Some(output.to_string_lossy().into_owned()),
        };
        run(&opts).unwrap();
        let written = std::fs::read_to_string(&output).unwrap();
        let lines: Vec<&str> = written.lines().collect();
        assert_eq!(lines.len(), 3);
        // External ids round-trip into the output, in file order.
        let first: Vec<&str> = lines[0].split('\t').collect();
        assert_eq!(first[0], "18446744073709551615");
        assert_eq!(first[1], "9000000000");
        assert!(first[2].parse::<u32>().unwrap() < 2);
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&output).ok();
    }

    #[test]
    fn sparse_flag_parses_and_rejects_explicit_order() {
        let o = parse_args(&strs(&["g.txt", "--k", "4", "--sparse"])).unwrap();
        assert!(o.sparse);
        // Sparse mode streams in file order; an explicit --order would be
        // silently ignored, so it is a usage error instead.
        let err = parse_args(&strs(&[
            "g.txt", "--k", "4", "--sparse", "--order", "random",
        ]))
        .unwrap_err();
        assert!(err.contains("--order"), "{err}");
    }

    #[test]
    fn chunk_size_flag_parses_and_rejects_zero() {
        let o = parse_args(&strs(&["g.txt", "--k", "4", "--chunk-size", "512"])).unwrap();
        assert_eq!(o.chunk_size, Some(512));
        let err = parse_args(&strs(&["g.txt", "--k", "4", "--chunk-size", "0"])).unwrap_err();
        assert!(err.contains("--chunk-size"), "{err}");
        assert!(parse_args(&strs(&["g.txt", "--k", "4", "--chunk-size", "x"])).is_err());
    }

    #[test]
    fn packed_input_is_detected_by_magic_and_partitions() {
        use clugp_graph::pack::{write_pack, PackOptions};
        use clugp_graph::types::Edge;
        let dir = std::env::temp_dir().join("clugp_part_cli_packed_test");
        std::fs::create_dir_all(&dir).unwrap();
        // Deliberately misleading extension: detection is magic-based.
        let input = dir.join("in.txt");
        let output = dir.join("out.tsv");
        let edges = vec![
            Edge::new(0, 1),
            Edge::new(0, 2),
            Edge::new(1, 2),
            Edge::new(2, 3),
        ];
        write_pack(&input, 4, &edges, &PackOptions::default()).unwrap();
        let opts = Options {
            input: input.to_string_lossy().into_owned(),
            k: 2,
            algo: "hdrf".into(),
            order: "asis".into(),
            tau: 1.0,
            threads: 1,
            chunk_size: Some(2), // exercise the override end to end
            sparse: false,
            output: Some(output.to_string_lossy().into_owned()),
        };
        run(&opts).unwrap();
        // Restore the default so concurrently running tests keep the
        // standard granularity.
        clugp_graph::stream::set_chunk_edges(clugp_graph::stream::DEFAULT_CHUNK_EDGES).unwrap();
        let written = std::fs::read_to_string(&output).unwrap();
        assert_eq!(written.lines().count(), 4);
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&output).ok();
    }

    #[test]
    fn sparse_mode_rejects_packed_input() {
        use clugp_graph::pack::{write_pack, PackOptions};
        use clugp_graph::types::Edge;
        let dir = std::env::temp_dir().join("clugp_part_cli_sparse_packed");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.clugpz");
        write_pack(&input, 2, &[Edge::new(0, 1)], &PackOptions::default()).unwrap();
        let opts = Options {
            input: input.to_string_lossy().into_owned(),
            k: 2,
            algo: "hdrf".into(),
            order: "bfs".into(),
            tau: 1.0,
            threads: 1,
            chunk_size: None,
            sparse: true,
            output: None,
        };
        let err = run(&opts).unwrap_err();
        assert!(err.contains("--sparse"), "{err}");
        std::fs::remove_file(&input).ok();
    }
}
