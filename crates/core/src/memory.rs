//! Honest memory accounting for the space-overhead experiment (Fig. 6).
//!
//! Every partitioner reports the heap bytes of the internal state it had to
//! maintain, itemized by structure, measured from actual `Vec` capacities —
//! not an analytic formula. The output edge-assignment vector is excluded
//! for every algorithm (all algorithms emit it, so it cancels out of the
//! comparison; the paper likewise charges only the algorithm's working
//! state, which is why Hashing reports ~0).

use serde::Serialize;

/// Itemized heap footprint of a partitioner's working state.
#[derive(Debug, Clone, Default, Serialize)]
pub struct MemoryReport {
    items: Vec<(String, usize)>,
}

impl MemoryReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `bytes` for a named structure.
    pub fn add(&mut self, name: &str, bytes: usize) {
        self.items.push((name.to_string(), bytes));
    }

    /// Total bytes across all structures.
    pub fn total_bytes(&self) -> usize {
        self.items.iter().map(|(_, b)| b).sum()
    }

    /// The recorded `(name, bytes)` items in insertion order.
    pub fn items(&self) -> &[(String, usize)] {
        &self.items
    }

    /// Bytes of the named item, if present.
    pub fn get(&self, name: &str) -> Option<usize> {
        self.items.iter().find(|(n, _)| n == name).map(|(_, b)| *b)
    }
}

impl std::fmt::Display for MemoryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.2} MiB",
            self.total_bytes() as f64 / (1024.0 * 1024.0)
        )?;
        if !self.items.is_empty() {
            write!(f, " (")?;
            for (i, (n, b)) in self.items.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{n}: {:.2} MiB", *b as f64 / (1024.0 * 1024.0))?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_lookup() {
        let mut r = MemoryReport::new();
        r.add("degrees", 1000);
        r.add("replica-table", 5000);
        assert_eq!(r.total_bytes(), 6000);
        assert_eq!(r.get("degrees"), Some(1000));
        assert_eq!(r.get("missing"), None);
        assert_eq!(r.items().len(), 2);
    }

    #[test]
    fn empty_report_is_zero() {
        assert_eq!(MemoryReport::new().total_bytes(), 0);
    }

    #[test]
    fn display_mentions_items() {
        let mut r = MemoryReport::new();
        r.add("x", 1024 * 1024);
        let s = r.to_string();
        assert!(s.contains("1.00 MiB"));
        assert!(s.contains("x:"));
    }
}
