//! Partitioning results: the edge→partition assignment plus run metadata
//! (phase timings, memory report).

use crate::memory::MemoryReport;
use std::time::Duration;

/// The output of a vertex-cut streaming partitioner.
///
/// `assignments[i]` is the partition of the `i`-th edge *in stream order*
/// (the order the stream yielded edges during the run). Callers that built
/// the stream from an edge vector can zip the two to recover `(Edge, p)`
/// pairs; that is how [`crate::metrics::PartitionQuality`] and the GAS
/// engine consume it.
#[derive(Debug, Clone)]
pub struct Partitioning {
    /// Number of partitions.
    pub k: u32,
    /// Number of vertices of the streamed graph.
    pub num_vertices: u64,
    /// Per-edge partition id, aligned with stream order.
    pub assignments: Vec<u32>,
    /// Per-partition edge counts (`|p_i|`).
    pub loads: Vec<u64>,
}

impl Partitioning {
    /// Number of edges assigned.
    pub fn num_edges(&self) -> u64 {
        self.assignments.len() as u64
    }

    /// Relative load balance `k · max|p_i| / |E|` (paper §II-B). 0 for an
    /// empty graph.
    pub fn relative_balance(&self) -> f64 {
        let m = self.num_edges();
        if m == 0 {
            return 0.0;
        }
        let max = self.loads.iter().copied().max().unwrap_or(0);
        self.k as f64 * max as f64 / m as f64
    }

    /// Validates internal consistency: every assignment is `< k` and the
    /// load vector matches the assignment counts. Used by tests.
    pub fn validate(&self) -> Result<(), String> {
        if self.loads.len() != self.k as usize {
            return Err(format!(
                "loads has {} entries for k={}",
                self.loads.len(),
                self.k
            ));
        }
        let mut recount = vec![0u64; self.k as usize];
        for (i, &p) in self.assignments.iter().enumerate() {
            if p >= self.k {
                return Err(format!("edge {i} assigned to out-of-range partition {p}"));
            }
            recount[p as usize] += 1;
        }
        if recount != self.loads {
            return Err("load vector disagrees with assignments".to_string());
        }
        Ok(())
    }
}

/// Wall-clock timings of a partitioning run.
#[derive(Debug, Clone, Default)]
pub struct Timings {
    /// End-to-end duration.
    pub total: Duration,
    /// Time spent pulling edges from the stream source (I/O cost); only
    /// nonzero when the run instrumented its stream.
    pub io: Duration,
    /// Named phases (e.g. CLUGP's `clustering` / `cluster-graph` / `game` /
    /// `transform`) in execution order.
    pub phases: Vec<(&'static str, Duration)>,
}

impl Timings {
    /// Duration of the named phase, if recorded.
    pub fn phase(&self, name: &str) -> Option<Duration> {
        self.phases
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, d)| *d)
    }

    /// Total minus I/O: the computation cost the paper plots in Fig. 10(a).
    pub fn compute(&self) -> Duration {
        self.total.saturating_sub(self.io)
    }
}

/// Everything a partitioning run produces.
#[derive(Debug, Clone)]
pub struct PartitionRun {
    /// The edge assignment.
    pub partitioning: Partitioning,
    /// Peak footprint of the algorithm's internal state.
    pub memory: MemoryReport,
    /// Wall-clock timings.
    pub timings: Timings,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Partitioning {
        Partitioning {
            k: 2,
            num_vertices: 3,
            assignments: vec![0, 1, 1],
            loads: vec![1, 2],
        }
    }

    #[test]
    fn balance_formula() {
        let p = sample();
        // k*max/|E| = 2*2/3
        assert!((p.relative_balance() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_balance_is_zero() {
        let p = Partitioning {
            k: 4,
            num_vertices: 0,
            assignments: vec![],
            loads: vec![0; 4],
        };
        assert_eq!(p.relative_balance(), 0.0);
    }

    #[test]
    fn validate_accepts_consistent() {
        assert!(sample().validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_load_vector() {
        let mut p = sample();
        p.loads = vec![2, 1];
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let mut p = sample();
        p.assignments[0] = 9;
        assert!(p.validate().is_err());
    }

    #[test]
    fn timings_phase_lookup() {
        let t = Timings {
            total: Duration::from_secs(10),
            io: Duration::from_secs(3),
            phases: vec![("clustering", Duration::from_secs(4))],
        };
        assert_eq!(t.phase("clustering"), Some(Duration::from_secs(4)));
        assert_eq!(t.phase("game"), None);
        assert_eq!(t.compute(), Duration::from_secs(7));
    }
}
