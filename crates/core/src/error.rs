//! Error type for partitioning runs.

use std::fmt;

/// Errors raised by partitioners.
#[derive(Debug)]
pub enum PartitionError {
    /// The underlying edge stream failed (I/O, format, ...).
    Graph(clugp_graph::GraphError),
    /// A parameter is out of its valid range (e.g. `k == 0`, `τ < 1`).
    InvalidParam(String),
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::Graph(e) => write!(f, "stream error: {e}"),
            PartitionError::InvalidParam(m) => write!(f, "invalid parameter: {m}"),
        }
    }
}

impl std::error::Error for PartitionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PartitionError::Graph(e) => Some(e),
            PartitionError::InvalidParam(_) => None,
        }
    }
}

impl From<clugp_graph::GraphError> for PartitionError {
    fn from(e: clugp_graph::GraphError) -> Self {
        PartitionError::Graph(e)
    }
}

/// Convenience alias for partitioner results.
pub type Result<T> = std::result::Result<T, PartitionError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = PartitionError::InvalidParam("k must be positive".into());
        assert!(e.to_string().contains("k must be positive"));
        assert!(e.source().is_none());

        let g: PartitionError = clugp_graph::GraphError::InvalidConfig("broken".into()).into();
        assert!(g.to_string().contains("broken"));
        assert!(g.source().is_some());
    }
}
