//! Error type for partitioning runs.

use std::fmt;

/// How a distributed-transport fault manifested. The AMPC supervisor
/// treats every kind as retryable: the worker link is torn down,
/// respawned, and the pass replayed from the last committed checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// No frame arrived within the configured deadline.
    Timeout,
    /// The peer hung up: EOF, broken pipe, or a dropped channel end.
    Disconnected,
    /// A frame arrived but its framing or payload failed validation
    /// (bad length prefix, undecodable message).
    Corrupt,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultKind::Timeout => "timeout",
            FaultKind::Disconnected => "disconnected",
            FaultKind::Corrupt => "corrupt",
        })
    }
}

/// Errors raised by partitioners.
#[derive(Debug)]
pub enum PartitionError {
    /// The underlying edge stream failed (I/O, format, ...).
    Graph(clugp_graph::GraphError),
    /// A parameter is out of its valid range (e.g. `k == 0`, `τ < 1`).
    InvalidParam(String),
    /// A coordinator/worker transport link failed. Unlike the other
    /// variants this is *retryable*: it reflects the health of a link or
    /// process, not of the input or the configuration.
    Fault {
        /// How the link failed.
        kind: FaultKind,
        /// Human-readable context (which operation, which peer).
        detail: String,
    },
}

impl PartitionError {
    /// Builds a transport-fault error.
    pub fn fault(kind: FaultKind, detail: impl Into<String>) -> PartitionError {
        PartitionError::Fault {
            kind,
            detail: detail.into(),
        }
    }

    /// Whether the AMPC supervisor may retry the run from a checkpoint.
    /// Parameter and stream errors are deterministic — replaying them
    /// reproduces them — so only transport faults qualify.
    pub fn is_retryable(&self) -> bool {
        matches!(self, PartitionError::Fault { .. })
    }
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::Graph(e) => write!(f, "stream error: {e}"),
            PartitionError::InvalidParam(m) => write!(f, "invalid parameter: {m}"),
            PartitionError::Fault { kind, detail } => {
                write!(f, "transport fault ({kind}): {detail}")
            }
        }
    }
}

impl std::error::Error for PartitionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PartitionError::Graph(e) => Some(e),
            PartitionError::InvalidParam(_) | PartitionError::Fault { .. } => None,
        }
    }
}

impl From<clugp_graph::GraphError> for PartitionError {
    fn from(e: clugp_graph::GraphError) -> Self {
        PartitionError::Graph(e)
    }
}

/// Convenience alias for partitioner results.
pub type Result<T> = std::result::Result<T, PartitionError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = PartitionError::InvalidParam("k must be positive".into());
        assert!(e.to_string().contains("k must be positive"));
        assert!(e.source().is_none());

        let g: PartitionError = clugp_graph::GraphError::InvalidConfig("broken".into()).into();
        assert!(g.to_string().contains("broken"));
        assert!(g.source().is_some());
    }

    #[test]
    fn fault_classification() {
        let f = PartitionError::fault(FaultKind::Timeout, "worker 3 silent for 30s");
        assert!(f.is_retryable());
        assert!(f.to_string().contains("timeout"));
        assert!(f.to_string().contains("worker 3"));
        assert!(!PartitionError::InvalidParam("k".into()).is_retryable());
        let g: PartitionError = clugp_graph::GraphError::InvalidConfig("x".into()).into();
        assert!(!g.is_retryable());
    }
}
