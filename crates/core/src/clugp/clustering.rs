//! Pass 1 — streaming clustering with the allocation–splitting–migration
//! framework (paper Algorithm 2, §IV).
//!
//! For each streamed edge `(u, v)`:
//!
//! 1. **Allocation**: endpoints without a cluster get fresh singletons.
//! 2. **Splitting** (CLUGP's addition over Holl): when a cluster's volume
//!    (sum of member partial degrees) reaches `Vmax`, the endpoint that
//!    pushed it over is evicted into a fresh cluster and marked *divided* —
//!    its master moves out, a mirror conceptually stays behind. Chopping the
//!    high-degree vertex this way is what lowers the replication factor
//!    (Theorems 1-2).
//! 3. **Migration**: an endpoint of the smaller cluster migrates into the
//!    bigger one, pulling communities together. The exact rule is governed
//!    by [`MigrationPolicy`] (the paper's verbatim rule, Hollocou's
//!    headroom-guarded rule, or our anchored default — see the policy docs
//!    and the fig9 ablation).
//!
//! With `splitting = false` step 2 is skipped and the algorithm degenerates
//! to Hollocou's allocation–migration (the paper's CLUGP-S ablation and
//! Figure 2(c) behaviour).
//!
//! Note: Algorithm 2 line 18 of the paper reads `vol(c'_v) += deg[u]`; we
//! implement the symmetric `deg[v]` (see DESIGN.md §4 honest-divergence
//! notes).

use super::config::MigrationPolicy;
use crate::error::Result;
use crate::vertex_table::{VertexTable, DEFAULT_MAX_VERTICES};
use clugp_graph::stream::{chunk_edges, try_for_each_chunk, EdgeStream};
use clugp_graph::types::VertexId;

/// Sentinel for "no cluster assigned yet".
pub const NO_CLUSTER: u32 = u32::MAX;

/// Output of the streaming-clustering pass.
///
/// The per-vertex tables are [`VertexTable`]s keyed by compact internal
/// ids — index them with a bare [`VertexId`] (`result.cluster_of[v]`).
#[derive(Debug, Clone)]
pub struct ClusteringResult {
    /// Vertex → dense cluster id (`NO_CLUSTER` for vertices absent from the
    /// stream). This is the paper's vertex-cluster mapping table.
    pub cluster_of: VertexTable<u32>,
    /// Per-vertex degree observed by the pass (the paper's `deg[]`,
    /// consumed by the transformation pass).
    pub degree: VertexTable<u32>,
    /// Vertices marked *divided* (they triggered a split and therefore have
    /// mirror vertices).
    pub divided: VertexTable<bool>,
    /// Number of dense clusters.
    pub num_clusters: u32,
    /// Final volume per dense cluster (sum of member degrees).
    pub volumes: Vec<u64>,
    /// Diagnostics: number of splitting operations performed.
    pub splits: u64,
    /// Diagnostics: number of migration operations performed.
    pub migrations: u64,
}

impl ClusteringResult {
    /// Heap bytes of the tables the algorithm kept (the `O(2|V|)` state the
    /// paper cites for CLUGP in the space experiment).
    pub fn memory_bytes(&self) -> usize {
        self.cluster_of.memory_bytes()
            + self.degree.memory_bytes()
            + self.divided.memory_bytes()
            + self.volumes.capacity() * 8
    }

    /// Number of vertices that received a cluster.
    pub fn clustered_vertices(&self) -> u64 {
        self.cluster_of.iter().filter(|&&c| c != NO_CLUSTER).count() as u64
    }
}

/// Runs Algorithm 2 over one pass of `stream` with the default (Anchored)
/// migration policy and the default `max_vertices` cap.
///
/// `vmax` is the maximum cluster volume (`|E|/k` in the paper); `splitting`
/// toggles CLUGP vs Holl behaviour.
///
/// # Errors
///
/// Fails with `InvalidParam` if the stream's ids or vertex hint exceed the
/// `max_vertices` cap (see `crate::vertex_table`).
pub fn stream_clustering(
    stream: &mut dyn EdgeStream,
    vmax: u64,
    splitting: bool,
) -> Result<ClusteringResult> {
    stream_clustering_with(stream, vmax, splitting, MigrationPolicy::Anchored)
}

/// Runs Algorithm 2 with an explicit [`MigrationPolicy`].
pub fn stream_clustering_with(
    stream: &mut dyn EdgeStream,
    vmax: u64,
    splitting: bool,
    migration: MigrationPolicy,
) -> Result<ClusteringResult> {
    stream_clustering_capped(stream, vmax, splitting, migration, DEFAULT_MAX_VERTICES)
}

/// Runs Algorithm 2 with an explicit [`MigrationPolicy`] and `max_vertices`
/// cap on the internal id space.
pub fn stream_clustering_capped(
    stream: &mut dyn EdgeStream,
    vmax: u64,
    splitting: bool,
    migration: MigrationPolicy,
    max_vertices: u64,
) -> Result<ClusteringResult> {
    let n_hint = stream.num_vertices_hint().unwrap_or(0);
    let mut cluster_of: VertexTable<u32> =
        VertexTable::with_limit(n_hint, NO_CLUSTER, max_vertices)?;
    let mut degree: VertexTable<u32> = VertexTable::with_limit(n_hint, 0, max_vertices)?;
    let mut divided: VertexTable<bool> = VertexTable::with_limit(n_hint, false, max_vertices)?;
    // Raw (pre-compaction) cluster volumes; ids grow monotonically in
    // creation order, which preserves stream locality for batching.
    let mut vol: Vec<u64> = Vec::with_capacity(n_hint as usize / 4 + 16);
    let mut splits = 0u64;
    let mut migrations = 0u64;

    // Chunked drain: one virtual dispatch per block of edges, then a tight
    // loop — chunk boundaries carry no semantics, so the result is
    // bit-identical to the per-edge pull for any chunking.
    try_for_each_chunk(stream, chunk_edges(), |chunk| -> Result<()> {
        for &e in chunk {
            pass1_edge(
                e,
                vmax,
                splitting,
                migration,
                &mut cluster_of,
                &mut degree,
                &mut divided,
                &mut vol,
                &mut splits,
                &mut migrations,
            )?;
        }
        Ok(())
    })?;

    let (next_dense, volumes) = compact_clusters(&mut cluster_of, &degree, vol.len());

    Ok(ClusteringResult {
        cluster_of,
        degree,
        divided,
        num_clusters: next_dense,
        volumes,
        splits,
        migrations,
    })
}

/// Per-edge allocation–splitting–migration kernel (Algorithm 2's loop
/// body). `vol` is indexed by *raw* cluster id; fresh clusters are
/// allocated by pushing onto it, so its length is the raw id watermark.
/// Shared by the monolithic loop and the distributed worker so both paths
/// stay bit-identical.
#[inline]
#[allow(clippy::too_many_arguments)] // mirrors the pass state one-to-one
pub(crate) fn pass1_edge(
    e: clugp_graph::types::Edge,
    vmax: u64,
    splitting: bool,
    migration: MigrationPolicy,
    cluster_of: &mut VertexTable<u32>,
    degree: &mut VertexTable<u32>,
    divided: &mut VertexTable<bool>,
    vol: &mut Vec<u64>,
    splits: &mut u64,
    migrations: &mut u64,
) -> Result<()> {
    let new_cluster = |vol: &mut Vec<u64>| -> u32 {
        vol.push(0);
        (vol.len() - 1) as u32
    };
    let (u, v) = (e.src, e.dst);
    let hi = u.max(v);
    cluster_of.ensure(hi)?;
    degree.ensure(hi)?;
    divided.ensure(hi)?;

    // Allocation.
    if cluster_of[u] == NO_CLUSTER {
        cluster_of[u] = new_cluster(vol);
    }
    if cluster_of[v] == NO_CLUSTER {
        cluster_of[v] = new_cluster(vol);
    }
    degree[u] += 1;
    degree[v] += 1;
    vol[cluster_of[u] as usize] += 1;
    vol[cluster_of[v] as usize] += 1;

    // Splitting: evict the endpoint whose cluster just overflowed into
    // a fresh cluster, carrying its degree with it.
    if splitting {
        if vol[cluster_of[u] as usize] >= vmax {
            split_vertex(u, cluster_of, degree, vol, divided, || {
                *splits += 1;
            });
        }
        if v != u && vol[cluster_of[v] as usize] >= vmax {
            split_vertex(v, cluster_of, degree, vol, divided, || {
                *splits += 1;
            });
        }
    }

    // Migration: pull an endpoint of the smaller cluster into the
    // bigger one, provided neither cluster is full. The policy decides
    // which vertices may move:
    //  * Paper    — Algorithm 2 verbatim, no further conditions; lets
    //    migrations overfill clusters, which parks them at Vmax and
    //    turns every subsequent member edge into a spurious split.
    //  * Headroom — Hollocou's original guard (destination stays ≤ Vmax).
    //  * Anchored — Headroom plus: only vertices alone in their cluster
    //    (anchor 0) move, so a single cross edge cannot yank an
    //    established vertex out of its community (churn guard).
    let cu = cluster_of[u];
    let cv = cluster_of[v];
    if cu != cv && vol[cu as usize] < vmax && vol[cv as usize] < vmax {
        let du = u64::from(degree[u]);
        let dv = u64::from(degree[v]);
        let (mover, mover_deg, dest) = if vol[cu as usize] <= vol[cv as usize] {
            (u, du, cv)
        } else {
            (v, dv, cu)
        };
        let anchor = vol[cluster_of[mover] as usize] - mover_deg;
        let headroom_ok = vol[dest as usize] + mover_deg <= vmax;
        let allowed = match migration {
            MigrationPolicy::Paper => true,
            MigrationPolicy::Headroom => headroom_ok,
            MigrationPolicy::Anchored => anchor == 0 && headroom_ok,
        };
        if allowed {
            migrate(mover, dest, cluster_of, degree, vol);
            *migrations += 1;
        }
    }
    Ok(())
}

/// Compacts raw cluster ids (dropping emptied ones) in creation order, so
/// dense ids keep the stream-locality property §V-D relies on. Rewrites
/// `cluster_of` in place; returns the dense cluster count and the dense
/// per-cluster volumes (sum of member degrees). `raw_len` is the raw id
/// watermark (the length of the pass's `vol` vec).
pub(crate) fn compact_clusters(
    cluster_of: &mut VertexTable<u32>,
    degree: &VertexTable<u32>,
    raw_len: usize,
) -> (u32, Vec<u64>) {
    let mut used = vec![false; raw_len];
    for &c in cluster_of.iter() {
        if c != NO_CLUSTER {
            used[c as usize] = true;
        }
    }
    let mut raw_to_dense: Vec<u32> = vec![NO_CLUSTER; raw_len];
    let mut next_dense = 0u32;
    for (raw, &in_use) in used.iter().enumerate() {
        if in_use {
            raw_to_dense[raw] = next_dense;
            next_dense += 1;
        }
    }
    let mut volumes = vec![0u64; next_dense as usize];
    let degrees = degree.as_slice();
    for (vtx, c) in cluster_of.as_mut_slice().iter_mut().enumerate() {
        if *c != NO_CLUSTER {
            let dense = raw_to_dense[*c as usize];
            debug_assert_ne!(dense, NO_CLUSTER);
            *c = dense;
            volumes[dense as usize] += u64::from(degrees[vtx]);
        }
    }
    (next_dense, volumes)
}

fn split_vertex(
    w: VertexId,
    cluster_of: &mut VertexTable<u32>,
    degree: &VertexTable<u32>,
    vol: &mut Vec<u64>,
    divided: &mut VertexTable<bool>,
    mut on_split: impl FnMut(),
) {
    let old = cluster_of[w] as usize;
    let d = u64::from(degree[w]);
    debug_assert!(vol[old] >= d, "cluster volume below member degree");
    // A vertex alone in its cluster would be evicted into a fresh cluster
    // identical to the one it left: the mapping is unchanged, but the raw
    // vol vec grows and the splits/divided diagnostics inflate on every
    // further edge of a saturated hub. Skip the vacuous self-split.
    if vol[old] <= d {
        return;
    }
    vol[old] -= d;
    vol.push(d);
    cluster_of[w] = (vol.len() - 1) as u32;
    divided[w] = true;
    on_split();
}

fn migrate(
    w: VertexId,
    into: u32,
    cluster_of: &mut VertexTable<u32>,
    degree: &VertexTable<u32>,
    vol: &mut [u64],
) {
    let from = cluster_of[w] as usize;
    let d = u64::from(degree[w]);
    debug_assert!(vol[from] >= d, "cluster volume below member degree");
    vol[from] -= d;
    vol[into as usize] += d;
    cluster_of[w] = into;
}

#[cfg(test)]
mod tests {
    use super::*;
    use clugp_graph::stream::InMemoryStream;
    use clugp_graph::types::Edge;

    fn cluster(edges: Vec<Edge>, vmax: u64, splitting: bool) -> ClusteringResult {
        let mut s = InMemoryStream::from_edges(edges);
        stream_clustering(&mut s, vmax, splitting).unwrap()
    }

    #[test]
    fn single_edge_merges_into_one_cluster() {
        let r = cluster(vec![Edge::new(0, 1)], 100, true);
        assert_eq!(r.num_clusters, 1);
        assert_eq!(r.cluster_of[0], r.cluster_of[1]);
        assert_eq!(r.degree.as_slice(), &[1, 1]);
        assert_eq!(r.migrations, 1);
        assert_eq!(r.splits, 0);
    }

    #[test]
    fn triangle_forms_one_cluster() {
        let r = cluster(
            vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 0)],
            100,
            true,
        );
        assert_eq!(r.num_clusters, 1);
        assert_eq!(r.volumes, vec![6]); // Σ degrees = 2+2+2
    }

    #[test]
    fn volumes_equal_sum_of_member_degrees() {
        // The invariant the incremental accounting must maintain.
        let edges: Vec<Edge> = (0..50u32)
            .map(|i| Edge::new(i % 10, (i * 7 + 1) % 10))
            .collect();
        let r = cluster(edges, 8, true);
        let mut recomputed = vec![0u64; r.num_clusters as usize];
        for (v, &c) in r.cluster_of.as_slice().iter().enumerate() {
            if c != NO_CLUSTER {
                recomputed[c as usize] += u64::from(r.degree[v as u32]);
            }
        }
        assert_eq!(recomputed, r.volumes);
    }

    #[test]
    fn star_hub_is_split_and_marked_divided() {
        // Hub 0 with 40 spokes, tiny Vmax forces splits on the hub.
        let edges: Vec<Edge> = (1..=40).map(|i| Edge::new(0, i)).collect();
        let r = cluster(edges, 8, true);
        assert!(r.splits > 0, "expected at least one split");
        assert!(r.divided[0], "hub must be marked divided");
        assert!(r.num_clusters > 1);
    }

    #[test]
    fn saturated_hub_does_not_self_split_repeatedly() {
        // With Vmax=2 the hub is evicted once into its own cluster, which
        // immediately saturates; every further spoke edge used to "split"
        // the then-solitary hub into a fresh identical cluster, inflating
        // `splits` (one per remaining edge) and the raw cluster id space
        // with no effect on the final mapping.
        let spokes = 40u32;
        let edges: Vec<Edge> = (1..=spokes).map(|i| Edge::new(0, i)).collect();
        let r = cluster(edges, 2, true);
        assert_eq!(r.splits, 1, "only the genuine eviction counts");
        assert!(r.divided[0]);
        assert_eq!(
            r.divided.iter().filter(|&&d| d).count(),
            1,
            "only the hub is divided"
        );
        // The hub sits alone in its cluster; no other vertex shares it.
        let hub_cluster = r.cluster_of[0];
        assert_eq!(
            r.cluster_of.iter().filter(|&&c| c == hub_cluster).count(),
            1
        );
        // Final volumes must still equal the sum of member degrees.
        let mut recomputed = vec![0u64; r.num_clusters as usize];
        for (v, &c) in r.cluster_of.as_slice().iter().enumerate() {
            if c != NO_CLUSTER {
                recomputed[c as usize] += u64::from(r.degree[v as u32]);
            }
        }
        assert_eq!(recomputed, r.volumes);
    }

    #[test]
    fn no_splitting_means_no_divided_vertices() {
        let edges: Vec<Edge> = (1..=40).map(|i| Edge::new(0, i)).collect();
        let r = cluster(edges, 8, false);
        assert_eq!(r.splits, 0);
        assert!(r.divided.iter().all(|&d| !d));
    }

    #[test]
    fn holl_produces_more_clusters_for_star() {
        // Without splitting the hub's cluster saturates and every new spoke
        // becomes a singleton — the Figure 2(c) behaviour.
        let edges: Vec<Edge> = (1..=40).map(|i| Edge::new(0, i)).collect();
        let without = cluster(edges.clone(), 8, false);
        let with = cluster(edges, 8, true);
        assert!(
            with.num_clusters <= without.num_clusters,
            "splitting {} vs holl {}",
            with.num_clusters,
            without.num_clusters
        );
    }

    #[test]
    fn untouched_vertices_have_no_cluster() {
        let mut s = InMemoryStream::new(10, vec![Edge::new(0, 1)]);
        let r = stream_clustering(&mut s, 100, true).unwrap();
        assert_eq!(r.cluster_of[5], NO_CLUSTER);
        assert_eq!(r.clustered_vertices(), 2);
    }

    #[test]
    fn self_loop_counts_double_degree() {
        let r = cluster(vec![Edge::new(3, 3)], 100, true);
        assert_eq!(r.degree[3], 2);
        assert_eq!(r.num_clusters, 1);
        assert_eq!(r.volumes, vec![2]);
    }

    #[test]
    fn empty_stream() {
        let r = cluster(vec![], 100, true);
        assert_eq!(r.num_clusters, 0);
        assert_eq!(r.splits, 0);
        assert_eq!(r.migrations, 0);
    }

    #[test]
    fn dense_ids_are_contiguous() {
        let edges: Vec<Edge> = (0..200u32)
            .map(|i| Edge::new(i % 37, (i * 3) % 37))
            .collect();
        let r = cluster(edges, 10, true);
        let mut seen = vec![false; r.num_clusters as usize];
        for &c in r.cluster_of.iter() {
            if c != NO_CLUSTER {
                seen[c as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every dense id must be inhabited");
    }

    #[test]
    fn fresh_vertices_migrate_into_neighbor_cluster() {
        // Build cluster {0,1,2} (triangle); a fresh vertex 3 arriving on
        // edge (2,3) is loose (anchor 0) and migrates into the triangle.
        let edges = vec![
            Edge::new(0, 1),
            Edge::new(1, 2),
            Edge::new(2, 0),
            Edge::new(2, 3),
        ];
        let r = cluster(edges, 100, true);
        assert_eq!(r.cluster_of[3], r.cluster_of[0]);
    }

    #[test]
    fn anchored_vertices_resist_migration() {
        // Two triangles joined by one bridge: each endpoint of the bridge is
        // anchored in its own community (anchor > 0 on both sides), so the
        // bridge must not yank either across.
        let edges = vec![
            Edge::new(0, 1),
            Edge::new(1, 2),
            Edge::new(2, 0),
            Edge::new(3, 4),
            Edge::new(4, 5),
            Edge::new(5, 3),
            Edge::new(2, 3),
        ];
        let r = cluster(edges, 100, true);
        assert_eq!(r.cluster_of[0], r.cluster_of[2]);
        assert_eq!(r.cluster_of[3], r.cluster_of[5]);
        assert_ne!(r.cluster_of[2], r.cluster_of[3]);
    }
}
