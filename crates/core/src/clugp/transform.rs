//! Pass 3 — partition transformation (paper Algorithm 1, §III-C).
//!
//! Re-streams the edges and turns the vertex→cluster→partition join into an
//! edge→partition assignment under the hard balance cap `Lmax = τ|E|/k`:
//!
//! * if either endpoint's partition is full, the edge goes to whichever of
//!   the two still has room, else to the first partition with room (load
//!   balance, lines 6-14);
//! * endpoints in the same partition keep the edge there (lines 15-16);
//! * a *divided* endpoint (it already has mirrors from pass 1's splitting)
//!   is cut again — the edge follows the other endpoint (lines 18-19);
//! * otherwise the higher-degree endpoint is cut, i.e. the edge goes to the
//!   lower-degree endpoint's partition (lines 21-22, the power-law rule
//!   shared with HDRF/DBH).
//!
//! The pass keeps only the `k`-element load array (O(1) extra space) and
//! costs O(1) per edge.

use super::clustering::{ClusteringResult, NO_CLUSTER};
use crate::error::{PartitionError, Result};
use crate::vertex_table::VertexTable;
use clugp_graph::stream::{chunk_edges, for_each_chunk, EdgeStream};
use clugp_graph::types::Edge;

/// Per-edge transformation kernel (Algorithm 1's loop body) over the
/// pass-1 tables and the cluster→partition map. Shared by the monolithic
/// loop and the distributed worker so both paths stay bit-identical.
#[inline]
#[allow(clippy::too_many_arguments)] // mirrors the pass state one-to-one
pub(crate) fn transform_edge(
    e: Edge,
    cluster_of: &VertexTable<u32>,
    degree: &VertexTable<u32>,
    divided: &VertexTable<bool>,
    cluster_partition: &[u32],
    lmax: u64,
    k: u32,
    loads: &mut [u64],
    cursor: &mut u32,
    balance_reroutes: &mut u64,
) -> u32 {
    let _ = k; // used by the debug assertion below only
    let (u, v) = (e.src, e.dst);
    let cu = cluster_of[u];
    let cv = cluster_of[v];
    debug_assert_ne!(cu, NO_CLUSTER, "pass 3 saw a vertex pass 1 did not");
    debug_assert_ne!(cv, NO_CLUSTER, "pass 3 saw a vertex pass 1 did not");
    let pu = cluster_partition[cu as usize];
    let pv = cluster_partition[cv as usize];

    let p = if loads[pu as usize] >= lmax || loads[pv as usize] >= lmax {
        *balance_reroutes += 1;
        if loads[pu as usize] < lmax {
            pu
        } else if loads[pv as usize] < lmax {
            pv
        } else {
            while loads[*cursor as usize] >= lmax {
                *cursor += 1;
                debug_assert!(*cursor < k, "no partition under Lmax: infeasible cap");
            }
            *cursor
        }
    } else if pu == pv {
        pu
    } else {
        let du = degree[u];
        let dv = degree[v];
        match (divided[u], divided[v]) {
            // Both already replicated: cut the higher-degree one, i.e.
            // follow the lower-degree endpoint (§IV note on divided
            // vertices).
            (true, true) => {
                if du <= dv {
                    pu
                } else {
                    pv
                }
            }
            (true, false) => pv, // u has mirrors: cutting it again is cheap
            (false, true) => pu,
            (false, false) => {
                if dv > du {
                    pu // cut v, the higher-degree endpoint
                } else if du > dv {
                    pv
                } else if loads[pu as usize] <= loads[pv as usize] {
                    pu
                } else {
                    pv
                }
            }
        }
    };
    loads[p as usize] += 1;
    p
}

/// `Lmax = ceil(τ|E|/k)` — ceil so `k·Lmax ≥ |E|` always holds and the
/// balance scan cannot fail.
pub(crate) fn load_cap(tau: f64, num_edges: u64, k: u32) -> u64 {
    ((tau * num_edges as f64) / f64::from(k)).ceil() as u64
}

/// Output of the transformation pass.
#[derive(Debug, Clone)]
pub struct TransformResult {
    /// Per-edge partition, in stream order.
    pub assignments: Vec<u32>,
    /// Final per-partition edge counts.
    pub loads: Vec<u64>,
    /// Edges rerouted by the balance path (lines 6-14) — a diagnostic for
    /// how often τ actually binds.
    pub balance_reroutes: u64,
}

/// Runs Algorithm 1. `num_edges` is `|E|` (used for `Lmax`); the stream must
/// yield the same edges as pass 1.
pub fn transform(
    stream: &mut dyn EdgeStream,
    clustering: &ClusteringResult,
    cluster_partition: &[u32],
    k: u32,
    tau: f64,
    num_edges: u64,
) -> Result<TransformResult> {
    if tau < 1.0 {
        return Err(PartitionError::InvalidParam(format!(
            "tau must be >= 1, got {tau}"
        )));
    }
    let lmax = load_cap(tau, num_edges, k);
    let mut loads = vec![0u64; k as usize];
    let mut assignments = Vec::with_capacity(num_edges as usize);
    let mut balance_reroutes = 0u64;
    // Monotone cursor over partitions for the overflow scan: loads only
    // grow, so full partitions stay full and the scan is O(1) amortized.
    let mut cursor = 0u32;

    for_each_chunk(stream, chunk_edges(), |chunk| {
        for &e in chunk {
            let p = transform_edge(
                e,
                &clustering.cluster_of,
                &clustering.degree,
                &clustering.divided,
                cluster_partition,
                lmax,
                k,
                &mut loads,
                &mut cursor,
                &mut balance_reroutes,
            );
            assignments.push(p);
        }
    });

    Ok(TransformResult {
        assignments,
        loads,
        balance_reroutes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clugp::clustering::stream_clustering;
    use clugp_graph::stream::{InMemoryStream, RestreamableStream};
    use clugp_graph::types::Edge;

    /// Runs pass 1 then pass 3 with an explicit cluster→partition map.
    fn run(
        edges: Vec<Edge>,
        vmax: u64,
        cluster_partition_of: impl Fn(u32) -> u32,
        k: u32,
        tau: f64,
    ) -> (ClusteringResult, TransformResult) {
        let m = edges.len() as u64;
        let mut s = InMemoryStream::from_edges(edges);
        let clustering = stream_clustering(&mut s, vmax, true).unwrap();
        let map: Vec<u32> = (0..clustering.num_clusters)
            .map(&cluster_partition_of)
            .collect();
        s.reset().unwrap();
        let t = transform(&mut s, &clustering, &map, k, tau, m).unwrap();
        (clustering, t)
    }

    #[test]
    fn same_partition_edges_stay() {
        // One cluster, everything mapped to partition 1.
        let edges = vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 0)];
        let (_, t) = run(edges, 100, |_| 1, 2, 2.0);
        assert!(t.assignments.iter().all(|&p| p == 1));
        assert_eq!(t.loads, vec![0, 3]);
    }

    #[test]
    fn hard_cap_is_never_exceeded() {
        let edges: Vec<Edge> = (0..100u32)
            .map(|i| Edge::new(i % 17, (i * 3 + 1) % 17))
            .collect();
        for k in [2u32, 4, 8] {
            for tau in [1.0f64, 1.05, 1.5] {
                let (_, t) = run(edges.clone(), 10, |c| c % k, k, tau);
                let lmax = ((tau * 100.0) / f64::from(k)).ceil() as u64;
                assert!(
                    t.loads.iter().all(|&l| l <= lmax),
                    "k={k} tau={tau}: loads {:?} exceed {lmax}",
                    t.loads
                );
                assert_eq!(t.loads.iter().sum::<u64>(), 100);
            }
        }
    }

    #[test]
    fn tau_one_gives_perfect_balance() {
        let edges: Vec<Edge> = (0..64u32).map(|i| Edge::new(i, i + 64)).collect();
        let (_, t) = run(edges, 4, |c| c % 4, 4, 1.0);
        assert!(t.loads.iter().all(|&l| l == 16), "loads {:?}", t.loads);
    }

    #[test]
    fn higher_degree_endpoint_gets_cut() {
        // Hub 0 (cluster A → partition 0) and leaf chain (cluster B →
        // partition 1). The hub has higher degree so the cross edge should
        // go to the leaf's partition.
        // Build: triangle on {0,1,2} (cluster together), pair (3,4), then
        // cross edge (0,3). Degrees at pass-3 time: deg(0)=3, deg(3)=2.
        let edges = vec![
            Edge::new(0, 1),
            Edge::new(1, 2),
            Edge::new(2, 0),
            Edge::new(3, 4),
            Edge::new(0, 3),
        ];
        let m = edges.len() as u64;
        let mut s = InMemoryStream::from_edges(edges);
        let clustering = stream_clustering(&mut s, 100, true).unwrap();
        let c0 = clustering.cluster_of[0];
        let c3 = clustering.cluster_of[3];
        if c0 == c3 {
            return; // migration merged them; rule not exercised
        }
        let map: Vec<u32> = (0..clustering.num_clusters)
            .map(|c| if c == c0 { 0 } else { 1 })
            .collect();
        s.reset().unwrap();
        let t = transform(&mut s, &clustering, &map, 2, 2.0, m).unwrap();
        // Last edge = the cross edge: deg(0)=3 > deg(3)=2 → cut 0 → partition of 3.
        assert_eq!(*t.assignments.last().unwrap(), 1);
    }

    #[test]
    fn divided_vertices_absorb_cuts() {
        // Star forces splits on the hub; hub is divided, so cross edges
        // follow the spoke's partition.
        let edges: Vec<Edge> = (1..=30).map(|i| Edge::new(0, i)).collect();
        let m = edges.len() as u64;
        let mut s = InMemoryStream::from_edges(edges);
        let clustering = stream_clustering(&mut s, 6, true).unwrap();
        assert!(clustering.divided[0]);
        let map: Vec<u32> = (0..clustering.num_clusters).map(|c| c % 4).collect();
        s.reset().unwrap();
        let t = transform(&mut s, &clustering, &map, 4, 4.0, m).unwrap();
        // Every edge (0, i) with different partitions goes to i's partition.
        let hub_cluster = clustering.cluster_of[0];
        let hub_part = map[hub_cluster as usize];
        for (idx, &p) in t.assignments.iter().enumerate() {
            let spoke = (idx + 1) as u32;
            let sp = map[clustering.cluster_of[spoke] as usize];
            if sp != hub_part {
                assert_eq!(p, sp, "edge to spoke {spoke} should follow the spoke");
            }
        }
    }

    #[test]
    fn both_divided_cuts_the_higher_degree_endpoint() {
        // Force both endpoints of a bridge to be divided, then check the
        // edge lands in the lower-degree endpoint's partition.
        // Two stars with hubs 0 and 50; tiny Vmax splits both hubs.
        let mut edges: Vec<Edge> = (1..=30).map(|i| Edge::new(0, i)).collect();
        edges.extend((51..=70).map(|i| Edge::new(50, i)));
        edges.push(Edge::new(0, 50)); // the bridge
        let m = edges.len() as u64;
        let mut s = InMemoryStream::from_edges(edges);
        let clustering = stream_clustering(&mut s, 6, true).unwrap();
        if !(clustering.divided[0] && clustering.divided[50]) {
            return; // splitting pattern differs; rule not exercised
        }
        // deg(0)=31 > deg(50)=21 at bridge time: cut 0, edge goes to 50's
        // partition.
        let c0 = clustering.cluster_of[0];
        let c50 = clustering.cluster_of[50];
        if c0 == c50 {
            return;
        }
        let map: Vec<u32> = (0..clustering.num_clusters)
            .map(|c| if c == c0 { 0 } else { 1 })
            .collect();
        s.reset().unwrap();
        let t = transform(&mut s, &clustering, &map, 2, 4.0, m).unwrap();
        assert_eq!(*t.assignments.last().unwrap(), map[c50 as usize]);
    }

    #[test]
    fn rejects_bad_tau() {
        let edges = vec![Edge::new(0, 1)];
        let mut s = InMemoryStream::from_edges(edges);
        let clustering = stream_clustering(&mut s, 10, true).unwrap();
        s.reset().unwrap();
        let err = transform(&mut s, &clustering, &[0], 2, 0.5, 1);
        assert!(err.is_err());
    }

    #[test]
    fn empty_stream_is_fine() {
        let mut s = InMemoryStream::from_edges(vec![]);
        let clustering = stream_clustering(&mut s, 10, true).unwrap();
        s.reset().unwrap();
        let t = transform(&mut s, &clustering, &[], 3, 1.0, 0).unwrap();
        assert!(t.assignments.is_empty());
        assert_eq!(t.loads, vec![0, 0, 0]);
    }

    #[test]
    fn reroute_counter_counts_cap_hits() {
        // Map everything to partition 0 with tau=1: all but Lmax edges must
        // be rerouted.
        let edges: Vec<Edge> = (0..40u32).map(|i| Edge::new(i, (i + 1) % 40)).collect();
        let (_, t) = run(edges, 1000, |_| 0, 4, 1.0);
        assert!(t.balance_reroutes >= 30, "reroutes {}", t.balance_reroutes);
        assert!(t.loads.iter().all(|&l| l <= 10));
    }
}
