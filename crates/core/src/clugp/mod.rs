//! CLUGP — the paper's three-pass restreaming architecture.
//!
//! * Pass 1 — [`clustering`]: streaming clustering with the
//!   allocation–splitting–migration framework (Algorithm 2). The `splitting`
//!   switch off reproduces Holl (Hollocou et al.) for the CLUGP-S ablation.
//! * Pass 2 — [`cluster_graph`] + [`game`]: the cluster-level graph is built
//!   by one stream scan, then clusters play the exact potential game of
//!   Algorithm 3 (batched and parallel, Fig. 1(d)). [`greedy_assign`] is the
//!   CLUGP-G ablation.
//! * Pass 3 — [`transform`]: edges are re-streamed and assigned through the
//!   vertex→cluster→partition join under the balance cap `τ|E|/k`
//!   (Algorithm 1).
//!
//! [`Clugp`] wires the passes together behind the common
//! [`crate::partitioner::Partitioner`] interface.

pub mod cluster_graph;
pub mod clustering;
pub mod config;
pub mod distributed;
pub mod game;
pub mod greedy_assign;
pub mod transform;

pub use cluster_graph::ClusterGraph;
pub use clustering::{stream_clustering, stream_clustering_with, ClusteringResult};
pub use config::{ClugpConfig, ClusterAssignMode, LambdaMode, MigrationPolicy};
pub use distributed::ShardedClugp;
pub use game::{solve_game, GameOutcome};

use crate::error::Result;
use crate::memory::MemoryReport;
use crate::partition::{PartitionRun, Partitioning, Timings};
use crate::partitioner::{start_run, Partitioner};
use clugp_graph::stream::RestreamableStream;
use std::time::Instant;

/// The CLUGP partitioner (paper §III-§V).
#[derive(Debug, Clone, Default)]
pub struct Clugp {
    config: ClugpConfig,
}

impl Clugp {
    /// Creates CLUGP with the given configuration.
    pub fn new(config: ClugpConfig) -> Self {
        Clugp { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &ClugpConfig {
        &self.config
    }

    /// Runs the full pipeline, returning rich per-pass artifacts for
    /// inspection (used by the ablation/parallelization experiments and the
    /// integration tests).
    pub fn partition_detailed(
        &self,
        stream: &mut dyn RestreamableStream,
        k: u32,
    ) -> Result<DetailedRun> {
        let cfg = &self.config;
        cfg.validate()?;
        let total_start = Instant::now();
        let (n, m) = start_run(stream, k)?;

        // Pass 1: streaming clustering. Vmax = |E|/k needs the stream length;
        // without a hint splitting is disabled for the pass (documented
        // DESIGN.md; all provided stream types carry hints).
        let t = Instant::now();
        let vmax = if m > 0 { cfg.vmax(m, k) } else { u64::MAX };
        let clustering = clustering::stream_clustering_capped(
            stream,
            vmax,
            cfg.splitting,
            cfg.migration,
            cfg.max_vertices,
        )?;
        let clustering_time = t.elapsed();
        // Exact edge count, independent of the hint: each edge added 2 to
        // the degree total.
        let m_real: u64 = clustering.degree.iter().map(|&d| u64::from(d)).sum::<u64>() / 2;

        // Pass 2a: build the cluster graph by re-scanning the stream.
        let t = Instant::now();
        stream.reset()?;
        let cg = ClusterGraph::build(stream, &clustering);
        let cluster_graph_time = t.elapsed();

        // Pass 2b: map clusters to partitions.
        let t = Instant::now();
        let (cluster_partition, game) = match cfg.assign_mode {
            ClusterAssignMode::Game => {
                let outcome = solve_game(&cg, k, cfg)?;
                (outcome.partition_of.clone(), Some(outcome))
            }
            ClusterAssignMode::Greedy => (greedy_assign::greedy_assign(&cg, k), None),
        };
        let game_time = t.elapsed();

        // Pass 3: partition transformation.
        let t = Instant::now();
        stream.reset()?;
        let transform =
            transform::transform(stream, &clustering, &cluster_partition, k, cfg.tau, m_real)?;
        let transform_time = t.elapsed();

        let mut memory = MemoryReport::new();
        memory.add("cluster-table", clustering.memory_bytes());
        memory.add("cluster-graph", cg.memory_bytes());
        memory.add(
            "cluster-partition-map",
            cluster_partition.capacity() * std::mem::size_of::<u32>(),
        );
        let timings = Timings {
            total: total_start.elapsed(),
            io: std::time::Duration::ZERO,
            phases: vec![
                ("clustering", clustering_time),
                ("cluster-graph", cluster_graph_time),
                ("game", game_time),
                ("transform", transform_time),
            ],
        };
        Ok(DetailedRun {
            run: PartitionRun {
                partitioning: Partitioning {
                    k,
                    num_vertices: n.max(clustering.cluster_of.len()),
                    assignments: transform.assignments,
                    loads: transform.loads,
                },
                memory,
                timings,
            },
            clustering,
            cluster_graph: cg,
            cluster_partition,
            game,
        })
    }
}

/// Full artifacts of a CLUGP run (every pass's output).
#[derive(Debug)]
pub struct DetailedRun {
    /// The standard run output.
    pub run: PartitionRun,
    /// Pass 1 output.
    pub clustering: ClusteringResult,
    /// Pass 2 cluster-level graph.
    pub cluster_graph: ClusterGraph,
    /// Pass 2 output: cluster → partition.
    pub cluster_partition: Vec<u32>,
    /// Game diagnostics (None for CLUGP-G).
    pub game: Option<GameOutcome>,
}

impl Partitioner for Clugp {
    fn name(&self) -> &'static str {
        match (self.config.splitting, self.config.assign_mode) {
            (true, ClusterAssignMode::Game) => "CLUGP",
            (false, ClusterAssignMode::Game) => "CLUGP-S",
            (true, ClusterAssignMode::Greedy) => "CLUGP-G",
            (false, ClusterAssignMode::Greedy) => "CLUGP-SG",
        }
    }

    fn partition(&mut self, stream: &mut dyn RestreamableStream, k: u32) -> Result<PartitionRun> {
        Ok(self.partition_detailed(stream, k)?.run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::PartitionQuality;
    use clugp_graph::gen::{generate_web_crawl, WebCrawlConfig};
    use clugp_graph::order::{ordered_edges, StreamOrder};
    use clugp_graph::stream::InMemoryStream;

    fn web(n: u64, seed: u64) -> (u64, Vec<clugp_graph::types::Edge>) {
        let g = generate_web_crawl(&WebCrawlConfig {
            vertices: n,
            seed,
            ..Default::default()
        });
        (g.num_vertices(), ordered_edges(&g, StreamOrder::Bfs))
    }

    #[test]
    fn full_pipeline_validates() {
        let (n, edges) = web(2_000, 1);
        let mut s = InMemoryStream::new(n, edges.clone());
        let run = Clugp::default().partition(&mut s, 8).unwrap();
        run.partitioning.validate().unwrap();
        assert_eq!(run.partitioning.assignments.len(), edges.len());
    }

    #[test]
    fn respects_balance_cap() {
        let (n, edges) = web(2_000, 2);
        let m = edges.len() as f64;
        let mut s = InMemoryStream::new(n, edges);
        for k in [2u32, 8, 32] {
            let run = Clugp::default().partition(&mut s, k).unwrap();
            let lmax = (1.0 * m / f64::from(k)).ceil();
            let max = *run.partitioning.loads.iter().max().unwrap();
            assert!(
                max as f64 <= lmax,
                "k={k}: max load {max} exceeds Lmax {lmax}"
            );
        }
    }

    #[test]
    fn beats_hashing_on_web_graphs() {
        let (n, edges) = web(3_000, 3);
        let mut s = InMemoryStream::new(n, edges.clone());
        let clugp = Clugp::default().partition(&mut s, 16).unwrap();
        let hash = crate::baselines::Hashing::default()
            .partition(&mut s, 16)
            .unwrap();
        let qc = PartitionQuality::compute(&edges, &clugp.partitioning);
        let qh = PartitionQuality::compute(&edges, &hash.partitioning);
        assert!(
            qc.replication_factor < 0.7 * qh.replication_factor,
            "CLUGP {} vs Hashing {}",
            qc.replication_factor,
            qh.replication_factor
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let (n, edges) = web(1_500, 4);
        let mut s = InMemoryStream::new(n, edges);
        let a = Clugp::default().partition(&mut s, 8).unwrap();
        let b = Clugp::default().partition(&mut s, 8).unwrap();
        assert_eq!(a.partitioning.assignments, b.partitioning.assignments);
    }

    #[test]
    fn ablation_names() {
        assert_eq!(Clugp::default().name(), "CLUGP");
        assert_eq!(
            Clugp::new(ClugpConfig {
                splitting: false,
                ..Default::default()
            })
            .name(),
            "CLUGP-S"
        );
        assert_eq!(
            Clugp::new(ClugpConfig {
                assign_mode: ClusterAssignMode::Greedy,
                ..Default::default()
            })
            .name(),
            "CLUGP-G"
        );
    }

    #[test]
    fn phase_timings_recorded() {
        let (n, edges) = web(500, 5);
        let mut s = InMemoryStream::new(n, edges);
        let run = Clugp::default().partition(&mut s, 4).unwrap();
        for phase in ["clustering", "cluster-graph", "game", "transform"] {
            assert!(run.timings.phase(phase).is_some(), "missing phase {phase}");
        }
    }

    #[test]
    fn detailed_run_exposes_artifacts() {
        let (n, edges) = web(500, 6);
        let mut s = InMemoryStream::new(n, edges);
        let d = Clugp::default().partition_detailed(&mut s, 4).unwrap();
        assert!(d.clustering.num_clusters > 0);
        assert_eq!(
            d.cluster_partition.len(),
            d.clustering.num_clusters as usize
        );
        assert!(d.game.is_some());
    }

    #[test]
    fn splitting_reduces_replication() {
        let (n, edges) = web(4_000, 7);
        let mut s = InMemoryStream::new(n, edges.clone());
        let with = Clugp::default().partition(&mut s, 32).unwrap();
        let without = Clugp::new(ClugpConfig {
            splitting: false,
            ..Default::default()
        })
        .partition(&mut s, 32)
        .unwrap();
        let qw = PartitionQuality::compute(&edges, &with.partitioning);
        let qo = PartitionQuality::compute(&edges, &without.partitioning);
        assert!(
            qw.replication_factor <= qo.replication_factor * 1.10,
            "splitting {} should not materially lose to no-splitting {}",
            qw.replication_factor,
            qo.replication_factor
        );
    }

    #[test]
    fn game_beats_greedy_assignment() {
        let (n, edges) = web(4_000, 8);
        let mut s = InMemoryStream::new(n, edges.clone());
        let game = Clugp::default().partition(&mut s, 32).unwrap();
        let greedy = Clugp::new(ClugpConfig {
            assign_mode: ClusterAssignMode::Greedy,
            ..Default::default()
        })
        .partition(&mut s, 32)
        .unwrap();
        let qg = PartitionQuality::compute(&edges, &game.partitioning);
        let qr = PartitionQuality::compute(&edges, &greedy.partitioning);
        assert!(
            qg.replication_factor <= qr.replication_factor * 1.05,
            "game {} should not lose to greedy assign {}",
            qg.replication_factor,
            qr.replication_factor
        );
    }

    #[test]
    fn k_one_gives_rf_one() {
        let (n, edges) = web(500, 9);
        let mut s = InMemoryStream::new(n, edges.clone());
        let run = Clugp::default().partition(&mut s, 1).unwrap();
        let q = PartitionQuality::compute(&edges, &run.partitioning);
        assert!((q.replication_factor - 1.0).abs() < 1e-12);
    }
}
