//! The cluster-level graph consumed by the partitioning game.
//!
//! Built by one scan of the edge stream after pass 1: an edge whose
//! endpoints share a cluster contributes to that cluster's intra count
//! `|c_i|`; otherwise it contributes to the symmetric inter-cluster weight
//! `w(c_i, c_j) = |e(c_i,c_j)| + |e(c_j,c_i)|`. The game's edge-cut cost
//! `½(|e(c_i,V\a_i)| + |e(V\a_i,c_i)|)` only ever needs the symmetric sums,
//! so directions are merged at build time.

use super::clustering::{ClusteringResult, NO_CLUSTER};
use clugp_graph::stream::{chunk_edges, for_each_chunk, EdgeStream};

/// Weighted cluster adjacency plus per-cluster intra-edge counts.
#[derive(Debug, Clone)]
pub struct ClusterGraph {
    /// Number of clusters `m`.
    pub num_clusters: u32,
    /// `|c_i|`: intra-cluster edge count per cluster (the game's cluster
    /// "size").
    pub intra: Vec<u64>,
    /// CSR offsets into `neighbors`.
    offsets: Vec<u64>,
    /// `(neighbor cluster, symmetric weight)` pairs.
    neighbors: Vec<(u32, u32)>,
    /// `Σ_j w(c_i, c_j)`: total external weight per cluster
    /// (`|e(c_i,V\c_i)| + |e(V\c_i,c_i)|`).
    pub total_external: Vec<u64>,
    /// Game load weight per cluster: the cluster volume
    /// `2·|c_i| + Σ_j w(c_i,c_j)` (sum of member degrees). The paper uses
    /// `|c_i|` (intra edges) here, assuming intra-dominant clusters where
    /// the two coincide up to a factor 2; the volume additionally predicts
    /// where *inter*-cluster edges will land in pass 3, which is what the
    /// τ-cap actually bounds (see DESIGN.md §3).
    pub size: Vec<u64>,
}

impl ClusterGraph {
    /// Builds the cluster graph from one pass of `stream` using pass 1's
    /// vertex→cluster table.
    pub fn build(stream: &mut dyn EdgeStream, clustering: &ClusteringResult) -> Self {
        let mut sink = PairSink::new(clustering.num_clusters as usize);
        for_each_chunk(stream, chunk_edges(), |chunk| {
            for &e in chunk {
                let cu = clustering.cluster_of[e.src];
                let cv = clustering.cluster_of[e.dst];
                debug_assert_ne!(cu, NO_CLUSTER);
                debug_assert_ne!(cv, NO_CLUSTER);
                sink.push(cu, cv);
            }
        });
        let (intra, agg) = sink.finish();
        ClusterGraph::from_parts(clustering.num_clusters, intra, &agg)
    }

    /// Assembles the CSR structure from a per-cluster intra count and a
    /// sorted, deduplicated `(packed pair, weight)` aggregate — the halves
    /// [`PairSink`] produces, or (in the distributed path) the merge of
    /// several workers' partial aggregates.
    pub(crate) fn from_parts(num_clusters: u32, intra: Vec<u64>, agg: &[(u64, u32)]) -> Self {
        let m = num_clusters as usize;
        debug_assert_eq!(intra.len(), m);
        // CSR over the symmetric adjacency, via the exclusive-prefix-shift
        // trick: count degrees in `offsets`, prefix-sum them into bucket
        // *starts*, let the fill phase bump each start to its bucket's end,
        // then shift the array right by one slot to restore canonical CSR
        // offsets — no cloned cursor vector.
        let mut offsets = vec![0u64; m + 1];
        for &(key, _) in agg {
            offsets[(key >> 32) as usize] += 1;
            offsets[(key & 0xFFFF_FFFF) as usize] += 1;
        }
        let mut acc = 0u64;
        for o in offsets.iter_mut() {
            let count = *o;
            *o = acc;
            acc += count;
        }
        let mut neighbors = vec![(0u32, 0u32); acc as usize];
        let mut total_external = vec![0u64; m];
        for &(key, w) in agg {
            let lo = (key >> 32) as u32;
            let hi = (key & 0xFFFF_FFFF) as u32;
            neighbors[offsets[lo as usize] as usize] = (hi, w);
            offsets[lo as usize] += 1;
            neighbors[offsets[hi as usize] as usize] = (lo, w);
            offsets[hi as usize] += 1;
            total_external[lo as usize] += u64::from(w);
            total_external[hi as usize] += u64::from(w);
        }
        // offsets[i] now holds bucket i's end == bucket i+1's start.
        offsets.copy_within(0..m, 1);
        offsets[0] = 0;

        let size: Vec<u64> = intra
            .iter()
            .zip(&total_external)
            .map(|(&i, &e)| 2 * i + e)
            .collect();
        ClusterGraph {
            num_clusters,
            intra,
            offsets,
            neighbors,
            total_external,
            size,
        }
    }

    /// Symmetric weighted neighbors of cluster `c`.
    #[inline]
    pub fn neighbors(&self, c: u32) -> &[(u32, u32)] {
        let lo = self.offsets[c as usize] as usize;
        let hi = self.offsets[c as usize + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// `Σ_i |c_i|`: total intra-cluster edges.
    pub fn total_intra(&self) -> u64 {
        self.intra.iter().sum()
    }

    /// Total inter-cluster edges (each streamed edge counted once).
    pub fn total_inter_edges(&self) -> u64 {
        // Each inter-cluster edge contributes 1 to w(ci,cj), and w is stored
        // symmetrically per endpoint, so the per-cluster sums double-count.
        self.total_external.iter().sum::<u64>() / 2
    }

    /// Total game load weight `Σ_i size_i` (equals `2|E|`).
    pub fn total_size(&self) -> u64 {
        self.size.iter().sum()
    }

    /// The paper's default λ — its maximum value from Theorem 5,
    /// `k² · Σ_i |e(c_i,V\c_i)| / (Σ_i size_i)²`, expressed in the game's
    /// volume-based size units.
    ///
    /// Falls back to 1.0 for an edgeless cluster graph (the balance term is
    /// identically zero and λ is then irrelevant; the transformation pass
    /// enforces balance regardless).
    pub fn lambda_max(&self, k: u32) -> f64 {
        let size_sum = self.total_size() as f64;
        if size_sum == 0.0 {
            return 1.0;
        }
        let inter = self.total_inter_edges() as f64;
        (f64::from(k) * f64::from(k)) * inter / (size_sum * size_sum)
    }

    /// Heap bytes held by the structure.
    pub fn memory_bytes(&self) -> usize {
        self.intra.capacity() * 8
            + self.offsets.capacity() * 8
            + self.neighbors.capacity() * 8
            + self.total_external.capacity() * 8
    }
}

/// Streaming accumulator for the cluster graph's two halves: dense
/// per-cluster intra counts and the sorted symmetric inter-pair aggregate.
///
/// Sort-based symmetric aggregation keyed by the packed (min, max)
/// cluster pair: raw pairs accumulate in a bounded buffer; when it
/// fills, the buffer is sorted and run-length-merged into the sorted
/// `(pair, weight)` aggregate. Profiled against the previous
/// `FxHashMap` accumulation (pre-sized from `m`) on the bench
/// generator mix (uk-s web crawl and twitter-s BA analogues, BFS
/// order, k=32): the sorted merge is ~25% faster on the web mix and
/// ~5% faster on the social mix — BFS locality makes fresh pairs
/// arrive nearly sorted, so the sorts are cheap, while the hash path
/// pays a probe per edge. The flush threshold grows with the
/// aggregate (merge only once the buffer is at least as large as the
/// aggregate) so each merge at least doubles the merged volume and
/// total merge cost stays near-linear even when the distinct-pair
/// count dwarfs the base threshold; transient memory is bounded by
/// `max(4m, 64Ki)` keys or the aggregate's own size, whichever is
/// larger — never the raw |E_inter| pair list.
pub(crate) struct PairSink {
    flush_base: usize,
    buf: Vec<u64>,
    intra: Vec<u64>,
    agg: Vec<(u64, u32)>,
}

impl PairSink {
    /// Accumulator for `m` clusters.
    pub(crate) fn new(m: usize) -> PairSink {
        let flush_base = (4 * m).max(1 << 16);
        PairSink {
            flush_base,
            buf: Vec::with_capacity(flush_base),
            intra: vec![0u64; m],
            agg: Vec::new(),
        }
    }

    /// Records one edge whose endpoints sit in clusters `cu` and `cv`.
    #[inline]
    pub(crate) fn push(&mut self, cu: u32, cv: u32) {
        if cu == cv {
            self.intra[cu as usize] += 1;
        } else {
            let (lo, hi) = if cu < cv { (cu, cv) } else { (cv, cu) };
            self.buf.push((u64::from(lo) << 32) | u64::from(hi));
            if self.buf.len() >= self.flush_base.max(self.agg.len()) {
                flush_pairs(&mut self.buf, &mut self.agg);
            }
        }
    }

    /// Final flush; returns `(intra, sorted aggregate)`.
    pub(crate) fn finish(mut self) -> (Vec<u64>, Vec<(u64, u32)>) {
        flush_pairs(&mut self.buf, &mut self.agg);
        (self.intra, self.agg)
    }
}

/// Merges two sorted, deduplicated `(pair, weight)` aggregates, adding
/// weights on key collisions — how the coordinator combines workers'
/// partial cluster graphs. Weight-preserving by the same multiset
/// invariant `flush_boundaries_do_not_change_aggregate` pins for
/// [`flush_pairs`].
pub(crate) fn merge_weighted(a: &[(u64, u32)], b: &[(u64, u32)]) -> Vec<(u64, u32)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut ai, mut bi) = (0usize, 0usize);
    while ai < a.len() || bi < b.len() {
        if bi >= b.len() || (ai < a.len() && a[ai].0 < b[bi].0) {
            out.push(a[ai]);
            ai += 1;
        } else if ai >= a.len() || b[bi].0 < a[ai].0 {
            out.push(b[bi]);
            bi += 1;
        } else {
            out.push((a[ai].0, a[ai].1 + b[bi].1));
            ai += 1;
            bi += 1;
        }
    }
    out
}

/// Sorts the raw pair buffer and merges its run-length-encoded runs into the
/// sorted `(pair, weight)` aggregate, clearing the buffer.
fn flush_pairs(buf: &mut Vec<u64>, agg: &mut Vec<(u64, u32)>) {
    if buf.is_empty() {
        return;
    }
    buf.sort_unstable();
    let mut out: Vec<(u64, u32)> = Vec::with_capacity(agg.len() + buf.len() / 4 + 8);
    let mut ai = 0usize;
    let mut bi = 0usize;
    while ai < agg.len() || bi < buf.len() {
        if ai < agg.len() && (bi >= buf.len() || agg[ai].0 <= buf[bi]) {
            match out.last_mut() {
                Some((k, w)) if *k == agg[ai].0 => *w += agg[ai].1,
                _ => out.push(agg[ai]),
            }
            ai += 1;
        } else {
            let key = buf[bi];
            let mut run = 0u32;
            while bi < buf.len() && buf[bi] == key {
                run += 1;
                bi += 1;
            }
            match out.last_mut() {
                Some((k, w)) if *k == key => *w += run,
                _ => out.push((key, run)),
            }
        }
    }
    *agg = out;
    buf.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clugp::clustering::stream_clustering;
    use clugp_graph::stream::{InMemoryStream, RestreamableStream};
    use clugp_graph::types::Edge;

    /// Clusters then builds the cluster graph over the same edges.
    fn build(edges: Vec<Edge>, vmax: u64) -> (ClusteringResult, ClusterGraph) {
        let mut s = InMemoryStream::from_edges(edges);
        let clustering = stream_clustering(&mut s, vmax, true).unwrap();
        s.reset().unwrap();
        let cg = ClusterGraph::build(&mut s, &clustering);
        (clustering, cg)
    }

    #[test]
    fn triangle_is_all_intra() {
        let (_, cg) = build(vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 0)], 100);
        assert_eq!(cg.num_clusters, 1);
        assert_eq!(cg.total_intra(), 3);
        assert_eq!(cg.total_inter_edges(), 0);
        assert!(cg.neighbors(0).is_empty());
    }

    #[test]
    fn two_communities_with_a_bridge() {
        // Two triangles joined by one edge, Vmax small enough to keep the
        // communities in separate clusters.
        let edges = vec![
            Edge::new(0, 1),
            Edge::new(1, 2),
            Edge::new(2, 0),
            Edge::new(3, 4),
            Edge::new(4, 5),
            Edge::new(5, 3),
            Edge::new(2, 3), // bridge
        ];
        let (clustering, cg) = build(edges, 7);
        if cg.num_clusters >= 2 {
            // The bridge shows up as inter-cluster weight if 2 and 3 ended
            // in different clusters.
            let c2 = clustering.cluster_of[2];
            let c3 = clustering.cluster_of[3];
            if c2 != c3 {
                assert!(cg.total_inter_edges() >= 1);
                let w: u32 = cg
                    .neighbors(c2)
                    .iter()
                    .filter(|(n, _)| *n == c3)
                    .map(|(_, w)| *w)
                    .sum();
                assert!(w >= 1);
            }
        }
        // Conservation: every edge is intra or inter exactly once.
        assert_eq!(cg.total_intra() + cg.total_inter_edges(), 7);
    }

    #[test]
    fn edge_conservation_on_random_graph() {
        let edges: Vec<Edge> = (0..300u32)
            .map(|i| Edge::new((i * 13) % 53, (i * 7 + 1) % 53))
            .collect();
        let n = edges.len() as u64;
        let (_, cg) = build(edges, 20);
        assert_eq!(cg.total_intra() + cg.total_inter_edges(), n);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let edges: Vec<Edge> = (0..200u32)
            .map(|i| Edge::new((i * 11) % 41, (i * 3 + 2) % 41))
            .collect();
        let (_, cg) = build(edges, 15);
        for c in 0..cg.num_clusters {
            for &(nb, w) in cg.neighbors(c) {
                let back: u32 = cg
                    .neighbors(nb)
                    .iter()
                    .filter(|(x, _)| *x == c)
                    .map(|(_, w)| *w)
                    .sum();
                assert_eq!(back, w, "asymmetric weight between {c} and {nb}");
            }
        }
    }

    #[test]
    fn total_external_matches_neighbor_sums() {
        let edges: Vec<Edge> = (0..150u32)
            .map(|i| Edge::new((i * 5) % 31, (i * 17 + 3) % 31))
            .collect();
        let (_, cg) = build(edges, 12);
        for c in 0..cg.num_clusters {
            let sum: u64 = cg.neighbors(c).iter().map(|(_, w)| u64::from(*w)).sum();
            assert_eq!(sum, cg.total_external[c as usize]);
        }
    }

    #[test]
    fn lambda_max_formula() {
        let (_, cg) = build(vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 0)], 100);
        // intra=3, inter=0 → λ_max = 0.
        assert_eq!(cg.lambda_max(4), 0.0);
    }

    #[test]
    fn lambda_max_degenerate_on_empty_graph() {
        let (_, cg) = build(vec![], 10);
        assert_eq!(cg.lambda_max(4), 1.0);
    }

    #[test]
    fn size_is_cluster_volume() {
        // size_i = 2·intra_i + external_i = Σ member degrees, and the sizes
        // sum to 2|E|.
        let edges: Vec<Edge> = (0..120u32)
            .map(|i| Edge::new((i * 7) % 29, (i * 11 + 1) % 29))
            .collect();
        let m = edges.len() as u64;
        let (clustering, cg) = build(edges, 9);
        assert_eq!(cg.total_size(), 2 * m);
        let mut vol = vec![0u64; cg.num_clusters as usize];
        for (v, &c) in clustering.cluster_of.as_slice().iter().enumerate() {
            if c != crate::clugp::clustering::NO_CLUSTER {
                vol[c as usize] += u64::from(clustering.degree[v as u32]);
            }
        }
        assert_eq!(vol, cg.size);
    }

    #[test]
    fn empty_graph() {
        let (_, cg) = build(vec![], 10);
        assert_eq!(cg.num_clusters, 0);
        assert_eq!(cg.total_intra(), 0);
        assert_eq!(cg.total_inter_edges(), 0);
    }

    #[test]
    fn neighbor_lists_are_sorted() {
        // The sorted-merge aggregation fills each CSR bucket in ascending
        // key order, so neighbor ids come out sorted — a deterministic
        // order independent of stream chunking and flush boundaries.
        let edges: Vec<Edge> = (0..400u32)
            .map(|i| Edge::new((i * 13) % 61, (i * 7 + 1) % 61))
            .collect();
        let (_, cg) = build(edges, 12);
        for c in 0..cg.num_clusters {
            let ids: Vec<u32> = cg.neighbors(c).iter().map(|(n, _)| *n).collect();
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            assert_eq!(ids, sorted, "cluster {c} neighbors unsorted");
        }
    }

    #[test]
    fn merge_weighted_equals_single_flush() {
        // Splitting a key sequence across two aggregates and merging must
        // equal flushing the whole sequence at once.
        let keys: Vec<u64> = (0..400u64).map(|i| (i * 29) % 31).collect();
        let reference = {
            let mut buf = keys.clone();
            let mut agg = Vec::new();
            super::flush_pairs(&mut buf, &mut agg);
            agg
        };
        for split in [0usize, 1, 57, 399, 400] {
            let (mut left, mut right) = (keys[..split].to_vec(), keys[split..].to_vec());
            let (mut a, mut b) = (Vec::new(), Vec::new());
            super::flush_pairs(&mut left, &mut a);
            super::flush_pairs(&mut right, &mut b);
            assert_eq!(super::merge_weighted(&a, &b), reference, "split={split}");
        }
    }

    #[test]
    fn flush_boundaries_do_not_change_aggregate() {
        // Merge the same key sequence under different flush splits.
        let keys: Vec<u64> = (0..500u64).map(|i| (i * 37) % 23).collect();
        let reference = {
            let mut buf = keys.clone();
            let mut agg = Vec::new();
            super::flush_pairs(&mut buf, &mut agg);
            agg
        };
        for split in [1usize, 7, 64, 499] {
            let mut agg = Vec::new();
            let mut buf = Vec::new();
            for chunk in keys.chunks(split) {
                buf.extend_from_slice(chunk);
                super::flush_pairs(&mut buf, &mut agg);
            }
            assert_eq!(agg, reference, "split={split}");
            // Aggregate stays sorted and strictly deduplicated.
            assert!(agg.windows(2).all(|w| w[0].0 < w[1].0));
        }
    }
}
