//! CLUGP-G ablation (Fig. 9): replace the game with LPT greedy — assign
//! each cluster, biggest first, to the currently least-loaded partition.
//! Pure balance, no edge-cut awareness; the gap to the game isolates the
//! contribution of §V.

use super::cluster_graph::ClusterGraph;

/// Greedy (largest-processing-time) cluster → partition assignment.
pub fn greedy_assign(cg: &ClusterGraph, k: u32) -> Vec<u32> {
    let m = cg.num_clusters as usize;
    let mut order: Vec<u32> = (0..cg.num_clusters).collect();
    order.sort_by_key(|&c| std::cmp::Reverse(cg.size[c as usize]));
    let mut loads = vec![0u64; k as usize];
    let mut assign = vec![0u32; m];
    for c in order {
        let mut best = 0usize;
        for p in 1..k as usize {
            if loads[p] < loads[best] {
                best = p;
            }
        }
        assign[c as usize] = best as u32;
        loads[best] += cg.size[c as usize];
    }
    assign
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clugp::clustering::stream_clustering;
    use clugp_graph::stream::{InMemoryStream, RestreamableStream};
    use clugp_graph::types::Edge;

    fn cluster_graph(edges: Vec<Edge>, vmax: u64) -> ClusterGraph {
        let mut s = InMemoryStream::from_edges(edges);
        let clustering = stream_clustering(&mut s, vmax, true).unwrap();
        s.reset().unwrap();
        ClusterGraph::build(&mut s, &clustering)
    }

    #[test]
    fn balances_cluster_sizes() {
        // Several triangles → several clusters of equal intra size; LPT
        // spreads them across partitions.
        let mut edges = Vec::new();
        for t in 0..8u32 {
            let b = t * 3;
            edges.push(Edge::new(b, b + 1));
            edges.push(Edge::new(b + 1, b + 2));
            edges.push(Edge::new(b + 2, b));
        }
        let cg = cluster_graph(edges, 7);
        let assign = greedy_assign(&cg, 4);
        let mut loads = vec![0u64; 4];
        for (c, &p) in assign.iter().enumerate() {
            loads[p as usize] += cg.size[c];
        }
        let max = *loads.iter().max().unwrap();
        let min = *loads.iter().min().unwrap();
        assert!(max - min <= 3, "loads {loads:?} too skewed");
    }

    #[test]
    fn all_assignments_valid() {
        let edges: Vec<Edge> = (0..100u32)
            .map(|i| Edge::new(i % 23, (i * 5) % 23))
            .collect();
        let cg = cluster_graph(edges, 10);
        let assign = greedy_assign(&cg, 3);
        assert_eq!(assign.len(), cg.num_clusters as usize);
        assert!(assign.iter().all(|&p| p < 3));
    }

    #[test]
    fn empty_graph() {
        let cg = cluster_graph(vec![], 10);
        assert!(greedy_assign(&cg, 4).is_empty());
    }

    #[test]
    fn k_one_all_zero() {
        let edges = vec![Edge::new(0, 1), Edge::new(2, 3)];
        let cg = cluster_graph(edges, 10);
        assert!(greedy_assign(&cg, 1).iter().all(|&p| p == 0));
    }
}
