//! Pass 2 — the cluster-partitioning potential game (paper Algorithm 3, §V).
//!
//! Each cluster is a player choosing one of `k` partitions; cluster `c_i`'s
//! individual cost under strategy `a_i` is
//!
//! ```text
//! ϕ(a_i) = (λ/k)·|c_i|·|a_i|  +  ½(|e(c_i,V\a_i)| + |e(V\a_i,c_i)|)
//! ```
//!
//! (Eq. 11). The game is an exact potential game (Theorem 4) with potential
//! `Φ = λ/(2k)·Σ|p|² + ½·Σ|e(p,V\p)|`, so round-robin best response
//! converges to a pure Nash equilibrium.
//!
//! **Parallelization** (§V-D): clusters are grouped into batches by cluster
//! id (ids preserve crawl locality), and every batch plays an *independent*
//! game over its own load vector and intra-batch adjacency — cross-batch
//! edges are treated as unconditionally cut, which is the price of the
//! "Independent Processing" design in Fig. 1(d). Batch seeds derive from
//! `(seed, batch_index)`, so results do not depend on thread scheduling.

use super::cluster_graph::ClusterGraph;
use super::config::{ClugpConfig, LambdaMode};
use crate::error::{PartitionError, Result};
use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;

/// Result of the cluster-partitioning game.
#[derive(Debug, Clone)]
pub struct GameOutcome {
    /// Cluster → partition (the cluster-partition mapping table).
    pub partition_of: Vec<u32>,
    /// The λ actually used.
    pub lambda: f64,
    /// Number of batches played.
    pub batches: usize,
    /// Maximum best-response rounds any batch needed.
    pub max_rounds_used: usize,
    /// Total strategy changes across all batches.
    pub total_moves: u64,
    /// Global potential Φ of the random initial profile.
    pub initial_potential: f64,
    /// Global potential Φ at equilibrium.
    pub final_potential: f64,
}

/// Resolves the λ of the game from the configured [`LambdaMode`].
pub fn resolve_lambda(cg: &ClusterGraph, k: u32, mode: LambdaMode) -> f64 {
    match mode {
        LambdaMode::Max => cg.lambda_max(k),
        LambdaMode::Weight(w) => cg.lambda_max(k) * w / (1.0 - w),
        LambdaMode::Fixed(l) => l,
    }
}

/// Plays the batched potential game and returns the equilibrium assignment.
pub fn solve_game(cg: &ClusterGraph, k: u32, cfg: &ClugpConfig) -> Result<GameOutcome> {
    let m = cg.num_clusters as usize;
    let lambda = resolve_lambda(cg, k, cfg.lambda);
    if m == 0 {
        return Ok(GameOutcome {
            partition_of: Vec::new(),
            lambda,
            batches: 0,
            max_rounds_used: 0,
            total_moves: 0,
            initial_potential: 0.0,
            final_potential: 0.0,
        });
    }
    if k == 1 {
        let partition_of = vec![0u32; m];
        let phi = potential(cg, &partition_of, k, lambda);
        return Ok(GameOutcome {
            partition_of,
            lambda,
            batches: 1,
            max_rounds_used: 0,
            total_moves: 0,
            initial_potential: phi,
            final_potential: phi,
        });
    }

    let batch_size = if cfg.batch_size == 0 {
        m
    } else {
        cfg.batch_size
    };
    let ranges: Vec<(usize, usize)> = (0..m)
        .step_by(batch_size)
        .map(|s| (s, (s + batch_size).min(m)))
        .collect();

    // Record the initial profile for the potential diagnostic: the same
    // seeded RNG each batch will start from.
    let initial: Vec<u32> = ranges
        .iter()
        .enumerate()
        .flat_map(|(bi, &(s, e))| random_profile(bi as u64, cfg.seed, k, e - s))
        .collect();
    let initial_potential = potential(cg, &initial, k, lambda);

    let solve = |(bi, &(s, e)): (usize, &(usize, usize))| -> BatchResult {
        solve_batch(cg, k, lambda, s, e, bi as u64, cfg.seed, cfg.max_rounds)
    };
    let results: Vec<BatchResult> = if cfg.threads == 1 {
        ranges.iter().enumerate().map(solve).collect()
    } else {
        run_parallel(cfg.threads, &ranges, solve)?
    };

    let mut partition_of = Vec::with_capacity(m);
    let mut max_rounds_used = 0usize;
    let mut total_moves = 0u64;
    for r in results {
        partition_of.extend(r.assign);
        max_rounds_used = max_rounds_used.max(r.rounds);
        total_moves += r.moves;
    }
    let final_potential = potential(cg, &partition_of, k, lambda);
    Ok(GameOutcome {
        partition_of,
        lambda,
        batches: ranges.len(),
        max_rounds_used,
        total_moves,
        initial_potential,
        final_potential,
    })
}

fn run_parallel<F>(threads: usize, ranges: &[(usize, usize)], solve: F) -> Result<Vec<BatchResult>>
where
    F: Fn((usize, &(usize, usize))) -> BatchResult + Sync,
{
    use rayon::prelude::*;
    let work = || ranges.par_iter().enumerate().map(&solve).collect();
    if threads == 0 {
        Ok(work())
    } else {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .map_err(|e| PartitionError::InvalidParam(format!("thread pool: {e}")))?;
        Ok(pool.install(work))
    }
}

struct BatchResult {
    assign: Vec<u32>,
    rounds: usize,
    moves: u64,
}

fn random_profile(batch_index: u64, seed: u64, k: u32, len: usize) -> Vec<u32> {
    let mut rng = SmallRng::seed_from_u64(seed ^ batch_index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    (0..len).map(|_| rng.gen_range(0..k)).collect()
}

/// Round-robin best response over the clusters of `[start, end)`.
#[allow(clippy::too_many_arguments)]
fn solve_batch(
    cg: &ClusterGraph,
    k: u32,
    lambda: f64,
    start: usize,
    end: usize,
    batch_index: u64,
    seed: u64,
    max_rounds: usize,
) -> BatchResult {
    let len = end - start;
    let ku = k as usize;
    let mut assign = random_profile(batch_index, seed, k, len);
    // Batch-local partition loads (sum of member |c_i|).
    let mut load = vec![0u64; ku];
    for (i, &p) in assign.iter().enumerate() {
        load[p as usize] += cg.size[start + i];
    }
    // Scratch: intra-batch adjacency weight to each partition, plus the
    // touched list to clear it in O(touched).
    let mut adj = vec![0u64; ku];
    let mut touched: Vec<u32> = Vec::with_capacity(ku);

    let balance_coeff = lambda / f64::from(k);
    let mut rounds = 0usize;
    let mut moves = 0u64;
    for _ in 0..max_rounds {
        rounds += 1;
        let mut moved_this_round = 0u64;
        for i in 0..len {
            let c = (start + i) as u32;
            let size = cg.size[start + i];
            let cur = assign[i];
            load[cur as usize] -= size;

            for &(nb, w) in cg.neighbors(c) {
                let nbu = nb as usize;
                if nbu >= start && nbu < end {
                    let p = assign[nbu - start] as usize;
                    if adj[p] == 0 {
                        touched.push(p as u32);
                    }
                    adj[p] += u64::from(w);
                }
            }

            // ϕ(a_i) up to a constant: (λ/k)·|c_i|·(load(p)+|c_i|) − ½·adj(p).
            let mut best_p = cur;
            let mut best_cost = f64::INFINITY;
            let mut cur_cost = f64::INFINITY;
            for p in 0..k {
                let pl = (load[p as usize] + size) as f64;
                let cost = balance_coeff * size as f64 * pl - 0.5 * adj[p as usize] as f64;
                if p == cur {
                    cur_cost = cost;
                }
                if cost < best_cost {
                    best_cost = cost;
                    best_p = p;
                }
            }
            // Move only on strict improvement so the potential strictly
            // decreases and the loop terminates.
            let chosen = if best_cost < cur_cost - 1e-9 {
                best_p
            } else {
                cur
            };
            if chosen != cur {
                moved_this_round += 1;
            }
            assign[i] = chosen;
            load[chosen as usize] += size;

            for &p in &touched {
                adj[p as usize] = 0;
            }
            touched.clear();
        }
        moves += moved_this_round;
        if moved_this_round == 0 {
            break;
        }
    }
    BatchResult {
        assign,
        rounds,
        moves,
    }
}

/// Global exact potential `Φ(Λ) = λ/(2k)·Σ_p load(p)² + ½·cut` (Def. 4),
/// where `load(p) = Σ_{c∈p} |c|` and `cut` counts every inter-cluster edge
/// whose endpoints' clusters sit in different partitions (using the full
/// adjacency, including cross-batch pairs).
pub fn potential(cg: &ClusterGraph, partition_of: &[u32], k: u32, lambda: f64) -> f64 {
    let mut load = vec![0u64; k as usize];
    for (c, &p) in partition_of.iter().enumerate() {
        load[p as usize] += cg.size[c];
    }
    let load_term: f64 = load.iter().map(|&l| (l as f64) * (l as f64)).sum();
    let mut cut = 0u64;
    for c in 0..cg.num_clusters {
        for &(nb, w) in cg.neighbors(c) {
            // Count each symmetric pair once.
            if nb > c && partition_of[c as usize] != partition_of[nb as usize] {
                cut += u64::from(w);
            }
        }
    }
    lambda / (2.0 * f64::from(k)) * load_term + 0.5 * cut as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clugp::clustering::stream_clustering;
    use crate::clugp::config::ClusterAssignMode;
    use clugp_graph::gen::{generate_copying_model, CopyingModelConfig};
    use clugp_graph::order::{ordered_edges, StreamOrder};
    use clugp_graph::stream::{InMemoryStream, RestreamableStream};

    fn web_cluster_graph(n: u64, vmax: u64) -> ClusterGraph {
        let g = generate_copying_model(&CopyingModelConfig {
            vertices: n,
            ..Default::default()
        });
        let edges = ordered_edges(&g, StreamOrder::Bfs);
        let mut s = InMemoryStream::new(g.num_vertices(), edges);
        let clustering = stream_clustering(&mut s, vmax, true).unwrap();
        s.reset().unwrap();
        ClusterGraph::build(&mut s, &clustering)
    }

    fn single_batch_config() -> ClugpConfig {
        ClugpConfig {
            batch_size: 0,
            threads: 1,
            ..Default::default()
        }
    }

    #[test]
    fn equilibrium_reduces_potential() {
        let cg = web_cluster_graph(2_000, 500);
        let outcome = solve_game(&cg, 8, &single_batch_config()).unwrap();
        assert!(
            outcome.final_potential <= outcome.initial_potential,
            "potential increased: {} -> {}",
            outcome.initial_potential,
            outcome.final_potential
        );
        assert!(outcome.total_moves > 0, "game should move something");
    }

    #[test]
    fn all_clusters_get_valid_partitions() {
        let cg = web_cluster_graph(1_000, 200);
        let outcome = solve_game(&cg, 5, &ClugpConfig::default()).unwrap();
        assert_eq!(outcome.partition_of.len(), cg.num_clusters as usize);
        assert!(outcome.partition_of.iter().all(|&p| p < 5));
    }

    #[test]
    fn equilibrium_is_stable_no_unilateral_improvement() {
        // At Nash equilibrium no cluster can strictly lower its cost by
        // switching (checked against the batch-local cost in a single-batch
        // game, which sees full adjacency).
        let cg = web_cluster_graph(1_000, 250);
        let k = 4u32;
        let cfg = single_batch_config();
        let outcome = solve_game(&cg, k, &cfg).unwrap();
        let lambda = outcome.lambda;
        let assign = &outcome.partition_of;
        let mut load = vec![0u64; k as usize];
        for (c, &p) in assign.iter().enumerate() {
            load[p as usize] += cg.size[c];
        }
        for c in 0..cg.num_clusters {
            let size = cg.size[c as usize];
            let cur = assign[c as usize];
            let mut adj = vec![0u64; k as usize];
            for &(nb, w) in cg.neighbors(c) {
                adj[assign[nb as usize] as usize] += u64::from(w);
            }
            let cost = |p: u32| -> f64 {
                let without = load[cur as usize] - size;
                let pl = if p == cur {
                    without + size
                } else {
                    load[p as usize] + size
                } as f64;
                lambda / f64::from(k) * size as f64 * pl - 0.5 * adj[p as usize] as f64
            };
            let cur_cost = cost(cur);
            for p in 0..k {
                assert!(
                    cost(p) >= cur_cost - 1e-6,
                    "cluster {c} would deviate from {cur} to {p}"
                );
            }
        }
    }

    #[test]
    fn deterministic_regardless_of_threads() {
        let cg = web_cluster_graph(2_000, 100);
        let base = ClugpConfig {
            batch_size: 64,
            ..Default::default()
        };
        let a = solve_game(
            &cg,
            8,
            &ClugpConfig {
                threads: 1,
                ..base.clone()
            },
        )
        .unwrap();
        let b = solve_game(&cg, 8, &ClugpConfig { threads: 4, ..base }).unwrap();
        assert_eq!(a.partition_of, b.partition_of);
    }

    #[test]
    fn zero_lambda_minimizes_pure_cut() {
        // With λ = 0 only the cut matters: a connected pair of clusters
        // should co-locate.
        let cg = web_cluster_graph(500, 50);
        let cfg = ClugpConfig {
            lambda: LambdaMode::Fixed(0.0),
            batch_size: 0,
            threads: 1,
            ..Default::default()
        };
        let outcome = solve_game(&cg, 4, &cfg).unwrap();
        // Pure cut minimization yields zero or near-zero final cut term:
        // potential equals ½·cut, which must be ≤ initial.
        assert!(outcome.final_potential <= outcome.initial_potential);
    }

    #[test]
    fn weight_mode_scales_lambda() {
        let cg = web_cluster_graph(500, 50);
        let lmax = cg.lambda_max(8);
        let half = resolve_lambda(&cg, 8, LambdaMode::Weight(0.5));
        assert!((half - lmax).abs() < 1e-9 * lmax.max(1.0));
        let low = resolve_lambda(&cg, 8, LambdaMode::Weight(0.1));
        let high = resolve_lambda(&cg, 8, LambdaMode::Weight(0.9));
        assert!(low < half && half < high);
    }

    #[test]
    fn empty_cluster_graph() {
        let cg = web_cluster_graph(1, 10); // single vertex, no edges
        let outcome = solve_game(&cg, 4, &ClugpConfig::default()).unwrap();
        assert!(outcome.partition_of.is_empty());
    }

    #[test]
    fn k_one_short_circuits() {
        let cg = web_cluster_graph(300, 50);
        let outcome = solve_game(&cg, 1, &ClugpConfig::default()).unwrap();
        assert!(outcome.partition_of.iter().all(|&p| p == 0));
        assert_eq!(outcome.max_rounds_used, 0);
    }

    #[test]
    fn rounds_bounded_by_config() {
        let cg = web_cluster_graph(2_000, 100);
        let cfg = ClugpConfig {
            max_rounds: 2,
            batch_size: 0,
            threads: 1,
            ..Default::default()
        };
        let outcome = solve_game(&cg, 16, &cfg).unwrap();
        assert!(outcome.max_rounds_used <= 2);
    }

    #[test]
    fn greedy_mode_unused_here() {
        // Guard that ClusterAssignMode is orthogonal to solve_game (the
        // dispatcher lives in mod.rs); the import is exercised for config
        // completeness.
        assert_ne!(ClusterAssignMode::Game, ClusterAssignMode::Greedy);
    }
}
