//! CLUGP configuration (the paper's experiment defaults are the `Default`s).

use crate::error::{PartitionError, Result};

/// How pass 2 maps clusters to partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterAssignMode {
    /// The potential game of Algorithm 3 (the paper's method).
    Game,
    /// LPT greedy: biggest cluster to least-loaded partition — the CLUGP-G
    /// ablation of Fig. 9.
    Greedy,
}

/// Migration rule of the clustering pass (a design-choice ablation; see
/// DESIGN.md §4 honest-divergence notes and the `fig9` experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationPolicy {
    /// Our default: only *loose* vertices (alone in their cluster) migrate,
    /// and only when the destination keeps headroom below `Vmax`. Prevents
    /// both migration-overfill split cascades and community churn from
    /// popular vertices being yanked by single cross edges.
    Anchored,
    /// Hollocou's original rule: any vertex in the smaller cluster migrates
    /// if the destination keeps headroom.
    Headroom,
    /// Algorithm 2 verbatim: any vertex in the smaller cluster migrates
    /// whenever both clusters are under `Vmax` (no headroom check).
    Paper,
}

/// How the normalization factor λ of Eq. 10/11 is chosen.
///
/// The equal-importance balance point of Eq. 15 coincides with
/// [`LambdaMode::Max`] under the even-assignment estimate the paper uses
/// (`Σ|p_i|² ≈ (Σ|c_i|)²/k`), so `Max` covers both of the paper's settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LambdaMode {
    /// λ at its maximum value `k²·Σe(c_i,V\c_i) / (Σ|c_i|)²` (Theorem 5) —
    /// the paper's experimental default.
    Max,
    /// Relative weight `w ∈ (0,1)` between load balancing and edge-cutting
    /// (Fig. 11(b)): `λ(w) = λ_max · w / (1−w)`, so `w = 0.5` reproduces
    /// [`LambdaMode::Max`].
    Weight(f64),
    /// A fixed explicit λ (for tests).
    Fixed(f64),
}

/// Full CLUGP configuration.
#[derive(Debug, Clone)]
pub struct ClugpConfig {
    /// Multiplier on the default maximum cluster volume: `Vmax =
    /// vmax_factor · |E| / k` (the paper uses `|E|/k`, i.e. factor 1.0,
    /// following Hollocou's suggestion).
    pub vmax_factor: f64,
    /// Imbalance factor τ ≥ 1 of the transformation pass (`Lmax = τ|E|/k`).
    pub tau: f64,
    /// λ selection for the cluster-partitioning game.
    pub lambda: LambdaMode,
    /// Clusters per game batch (paper default 6400). `0` means a single
    /// batch containing every cluster (the sequential full game).
    pub batch_size: usize,
    /// Rayon threads for batch processing. `0` = use the global pool.
    pub threads: usize,
    /// Best-response round cap per batch (the bound of Theorem 6 is loose;
    /// convergence is typically < 10 rounds).
    pub max_rounds: usize,
    /// Seed for the game's random initial assignment.
    pub seed: u64,
    /// Enable the splitting operation (off = Holl clustering; the CLUGP-S
    /// ablation).
    pub splitting: bool,
    /// Migration rule of the clustering pass.
    pub migration: MigrationPolicy,
    /// Cluster → partition assignment mode (Greedy = CLUGP-G ablation).
    pub assign_mode: ClusterAssignMode,
    /// Cap on the internal vertex id space: clustering-table growth past it
    /// fails with `InvalidParam` instead of OOM (see `crate::vertex_table`).
    /// Sparse 64-bit external ids must come through `clugp_graph::idmap`.
    pub max_vertices: u64,
}

impl Default for ClugpConfig {
    fn default() -> Self {
        ClugpConfig {
            vmax_factor: 1.0,
            tau: 1.0,
            lambda: LambdaMode::Max,
            batch_size: 6400,
            threads: 0,
            max_rounds: 64,
            seed: 0xC1_09_0F,
            splitting: true,
            migration: MigrationPolicy::Anchored,
            assign_mode: ClusterAssignMode::Game,
            max_vertices: crate::vertex_table::DEFAULT_MAX_VERTICES,
        }
    }
}

impl ClugpConfig {
    /// Maximum cluster volume for a stream of `m` edges and `k` partitions.
    /// At least 2 so a single edge cannot overflow a fresh cluster.
    pub fn vmax(&self, m: u64, k: u32) -> u64 {
        (((m as f64) * self.vmax_factor / f64::from(k)).ceil() as u64).max(2)
    }

    /// Checks parameter ranges.
    pub fn validate(&self) -> Result<()> {
        if self.tau < 1.0 {
            return Err(PartitionError::InvalidParam(format!(
                "imbalance factor tau must be >= 1.0, got {}",
                self.tau
            )));
        }
        if self.vmax_factor <= 0.0 {
            return Err(PartitionError::InvalidParam(
                "vmax_factor must be positive".into(),
            ));
        }
        if let LambdaMode::Weight(w) = self.lambda {
            if !(0.0 < w && w < 1.0) {
                return Err(PartitionError::InvalidParam(format!(
                    "relative weight must be in (0,1), got {w}"
                )));
            }
        }
        if let LambdaMode::Fixed(l) = self.lambda {
            if l < 0.0 {
                return Err(PartitionError::InvalidParam(
                    "fixed lambda must be non-negative".into(),
                ));
            }
        }
        if self.max_vertices == 0 {
            return Err(PartitionError::InvalidParam(
                "max_vertices must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = ClugpConfig::default();
        assert_eq!(c.vmax_factor, 1.0);
        assert_eq!(c.tau, 1.0);
        assert_eq!(c.batch_size, 6400);
        assert!(c.splitting);
        assert_eq!(c.assign_mode, ClusterAssignMode::Game);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn vmax_is_edges_over_k() {
        let c = ClugpConfig::default();
        assert_eq!(c.vmax(1_000, 10), 100);
        assert_eq!(c.vmax(1_001, 10), 101); // ceil
        assert_eq!(c.vmax(1, 10), 2); // floor of 2
    }

    #[test]
    fn rejects_bad_tau() {
        let c = ClugpConfig {
            tau: 0.9,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_bad_weight() {
        for w in [0.0, 1.0, -0.5, 2.0] {
            let c = ClugpConfig {
                lambda: LambdaMode::Weight(w),
                ..Default::default()
            };
            assert!(c.validate().is_err(), "weight {w} should be rejected");
        }
        let ok = ClugpConfig {
            lambda: LambdaMode::Weight(0.3),
            ..Default::default()
        };
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn rejects_negative_fixed_lambda() {
        let c = ClugpConfig {
            lambda: LambdaMode::Fixed(-1.0),
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_nonpositive_vmax_factor() {
        let c = ClugpConfig {
            vmax_factor: 0.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }
}
