//! Multi-node deployment of CLUGP (paper §III-C, closing paragraph):
//!
//! > "each distributed node accesses partial streaming edges and performs
//! > the three steps, clustering, game processing, and transformation,
//! > locally. [...] the final graph partitioning result is obtained by
//! > combining the partial partitioning results of distributed nodes."
//!
//! [`ShardedClugp`] simulates that deployment: the stream is split into
//! `shards` contiguous sub-streams (contiguity preserves crawl locality,
//! the same argument as §V-D batching), each shard runs the full three-pass
//! pipeline independently against the same `k` global partitions, and the
//! per-shard assignments are concatenated. Balance still holds globally:
//! every shard enforces `τ|E_shard|/k`, so partition loads sum to at most
//! `τ|E|/k` plus one rounding unit per shard.

use super::{Clugp, ClugpConfig};
use crate::error::Result;
use crate::memory::MemoryReport;
use crate::partition::{PartitionRun, Partitioning, Timings};
use crate::partitioner::{start_run, Partitioner};
use clugp_graph::stream::{collect_stream, InMemoryStream, RestreamableStream};

/// CLUGP across several independent nodes, each partitioning a contiguous
/// shard of the edge stream.
#[derive(Debug, Clone)]
pub struct ShardedClugp {
    config: ClugpConfig,
    shards: usize,
}

impl ShardedClugp {
    /// Creates a sharded deployment with `shards` nodes (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(config: ClugpConfig, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        ShardedClugp { config, shards }
    }

    /// Number of simulated nodes.
    pub fn shards(&self) -> usize {
        self.shards
    }
}

impl Partitioner for ShardedClugp {
    fn name(&self) -> &'static str {
        "CLUGP-dist"
    }

    fn partition(&mut self, stream: &mut dyn RestreamableStream, k: u32) -> Result<PartitionRun> {
        let started = std::time::Instant::now();
        let (n, _) = start_run(stream, k)?;
        self.config.validate()?;
        let edges = collect_stream(stream);
        let shard_len = edges.len().div_ceil(self.shards).max(1);

        // Each node runs the full three-pass pipeline on its shard. Nodes
        // are independent, so rayon order does not affect the result.
        use rayon::prelude::*;
        let shard_runs: Vec<Result<PartitionRun>> = edges
            .par_chunks(shard_len)
            .map(|chunk| {
                let mut local = InMemoryStream::new(n, chunk.to_vec());
                Clugp::new(self.config.clone()).partition(&mut local, k)
            })
            .collect();

        let mut assignments = Vec::with_capacity(edges.len());
        let mut loads = vec![0u64; k as usize];
        let mut memory = MemoryReport::new();
        let mut peak_shard_memory = 0usize;
        for (i, run) in shard_runs.into_iter().enumerate() {
            let run = run?;
            for (p, l) in loads.iter_mut().zip(&run.partitioning.loads) {
                *p += l;
            }
            assignments.extend(run.partitioning.assignments);
            peak_shard_memory = peak_shard_memory.max(run.memory.total_bytes());
            if i == 0 {
                for (name, bytes) in run.memory.items() {
                    memory.add(&format!("shard0/{name}"), *bytes);
                }
            }
        }
        memory.add("peak-shard-state", peak_shard_memory);

        Ok(PartitionRun {
            partitioning: Partitioning {
                k,
                num_vertices: n,
                assignments,
                loads,
            },
            memory,
            timings: Timings {
                total: started.elapsed(),
                ..Default::default()
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::PartitionQuality;
    use clugp_graph::gen::{generate_web_crawl, WebCrawlConfig};
    use clugp_graph::order::{ordered_edges, StreamOrder};

    fn web(n: u64) -> (u64, Vec<clugp_graph::types::Edge>) {
        let g = generate_web_crawl(&WebCrawlConfig {
            vertices: n,
            ..Default::default()
        });
        (g.num_vertices(), ordered_edges(&g, StreamOrder::Bfs))
    }

    #[test]
    fn covers_all_edges_and_validates() {
        let (n, edges) = web(3_000);
        let mut s = InMemoryStream::new(n, edges.clone());
        for shards in [1usize, 2, 4, 7] {
            let mut algo = ShardedClugp::new(ClugpConfig::default(), shards);
            let run = algo.partition(&mut s, 8).unwrap();
            assert_eq!(run.partitioning.assignments.len(), edges.len());
            run.partitioning.validate().unwrap();
        }
    }

    #[test]
    fn single_shard_equals_plain_clugp() {
        let (n, edges) = web(2_000);
        let mut s = InMemoryStream::new(n, edges);
        let sharded = ShardedClugp::new(ClugpConfig::default(), 1)
            .partition(&mut s, 8)
            .unwrap();
        let plain = Clugp::default().partition(&mut s, 8).unwrap();
        assert_eq!(
            sharded.partitioning.assignments,
            plain.partitioning.assignments
        );
    }

    #[test]
    fn global_balance_holds_within_shard_rounding() {
        let (n, edges) = web(4_000);
        let m = edges.len() as f64;
        let mut s = InMemoryStream::new(n, edges);
        let shards = 4usize;
        let k = 8u32;
        let run = ShardedClugp::new(ClugpConfig::default(), shards)
            .partition(&mut s, k)
            .unwrap();
        // Each shard adds at most ceil(|E_s|/k) ≤ |E_s|/k + 1.
        let bound = m / f64::from(k) + shards as f64;
        let max = *run.partitioning.loads.iter().max().unwrap() as f64;
        assert!(max <= bound, "max load {max} exceeds bound {bound}");
    }

    #[test]
    fn quality_degrades_gracefully_with_shards() {
        let (n, edges) = web(8_000);
        let mut s = InMemoryStream::new(n, edges.clone());
        let rf = |shards: usize, s: &mut InMemoryStream| {
            let run = ShardedClugp::new(ClugpConfig::default(), shards)
                .partition(s, 16)
                .unwrap();
            PartitionQuality::compute(&edges, &run.partitioning).replication_factor
        };
        let one = rf(1, &mut s);
        let four = rf(4, &mut s);
        // Sharding loses some cross-shard information but must stay in the
        // same quality regime (well below hashing-level replication).
        assert!(four < one * 1.8, "1-shard rf {one} vs 4-shard rf {four}");
    }

    #[test]
    fn deterministic_across_runs() {
        let (n, edges) = web(2_000);
        let mut s = InMemoryStream::new(n, edges);
        let mut algo = ShardedClugp::new(ClugpConfig::default(), 3);
        let a = algo.partition(&mut s, 8).unwrap();
        let b = algo.partition(&mut s, 8).unwrap();
        assert_eq!(a.partitioning.assignments, b.partitioning.assignments);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardedClugp::new(ClugpConfig::default(), 0);
    }
}
