//! The common partitioner interface and small shared helpers.

use crate::error::{PartitionError, Result};
use crate::partition::PartitionRun;
use clugp_graph::stream::RestreamableStream;

/// A vertex-cut streaming partitioner.
///
/// Implementations reset the stream themselves before the first pass, so a
/// stream can be reused across algorithms. One-pass algorithms read the
/// stream once; CLUGP restreams it three times.
pub trait Partitioner {
    /// Short identifier used in experiment tables (e.g. `"HDRF"`).
    fn name(&self) -> &'static str;

    /// Partitions the streamed edges into `k` parts.
    ///
    /// # Errors
    ///
    /// Fails if `k == 0`, on stream errors, or on invalid algorithm
    /// parameters.
    fn partition(&mut self, stream: &mut dyn RestreamableStream, k: u32) -> Result<PartitionRun>;
}

/// Validates `k` and resets the stream; returns `(num_vertices_hint,
/// len_hint)`.
pub(crate) fn start_run(stream: &mut dyn RestreamableStream, k: u32) -> Result<(u64, u64)> {
    if k == 0 {
        return Err(PartitionError::InvalidParam("k must be at least 1".into()));
    }
    stream.reset()?;
    let n = stream.num_vertices_hint().unwrap_or(0);
    let m = stream.len_hint().unwrap_or(0);
    Ok((n, m))
}

/// 64-bit mix (splitmix64 finalizer) used by the hashing-based partitioners;
/// seedable so that Hashing runs are reproducible but not trivially aligned
/// with vertex ids.
#[inline]
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clugp_graph::stream::{EdgeStream, InMemoryStream};
    use clugp_graph::types::Edge;

    #[test]
    fn start_run_rejects_zero_k() {
        let mut s = InMemoryStream::from_edges(vec![Edge::new(0, 1)]);
        assert!(matches!(
            start_run(&mut s, 0),
            Err(PartitionError::InvalidParam(_))
        ));
    }

    #[test]
    fn start_run_resets_and_reports_hints() {
        let mut s = InMemoryStream::new(5, vec![Edge::new(0, 1), Edge::new(1, 2)]);
        // Drain the stream first; start_run must rewind it.
        while s.next_edge().is_some() {}
        let (n, m) = start_run(&mut s, 4).unwrap();
        assert_eq!((n, m), (5, 2));
        assert_eq!(s.next_edge(), Some(Edge::new(0, 1)));
    }

    #[test]
    fn mix64_spreads_small_inputs() {
        let a = mix64(1);
        let b = mix64(2);
        assert_ne!(a, b);
        assert_ne!(a & 0xffff, b & 0xffff, "low bits should differ too");
    }
}
