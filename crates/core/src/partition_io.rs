//! Persisting partitionings: a versioned binary snapshot of an
//! edge→partition assignment so partitioning (expensive, offline) and
//! consumption (the distributed engine, repeatedly) can run in separate
//! processes — the operational split every production deployment needs.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic   [u8; 8] = b"CLUGPPA1"
//! k       u32
//! n       u64     number of vertices
//! m       u64     number of edges
//! a       m × u32 per-edge partition ids (stream order)
//! ```

use crate::error::{PartitionError, Result};
use crate::partition::Partitioning;
use clugp_graph::GraphError;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"CLUGPPA1";

/// Writes `partitioning` to `path`.
pub fn write_partitioning(path: &Path, partitioning: &Partitioning) -> Result<()> {
    let file = std::fs::File::create(path).map_err(io_err)?;
    let mut w = BufWriter::new(file);
    w.write_all(MAGIC).map_err(io_err)?;
    w.write_all(&partitioning.k.to_le_bytes()).map_err(io_err)?;
    w.write_all(&partitioning.num_vertices.to_le_bytes())
        .map_err(io_err)?;
    w.write_all(&(partitioning.assignments.len() as u64).to_le_bytes())
        .map_err(io_err)?;
    for &p in &partitioning.assignments {
        w.write_all(&p.to_le_bytes()).map_err(io_err)?;
    }
    w.flush().map_err(io_err)
}

/// Reads a partitioning; recomputes the load vector and validates ids.
pub fn read_partitioning(path: &Path) -> Result<Partitioning> {
    let file = std::fs::File::open(path).map_err(io_err)?;
    let mut r = BufReader::new(file);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic).map_err(truncated)?;
    if &magic != MAGIC {
        return Err(format_err("bad magic bytes"));
    }
    let mut b4 = [0u8; 4];
    let mut b8 = [0u8; 8];
    r.read_exact(&mut b4).map_err(truncated)?;
    let k = u32::from_le_bytes(b4);
    if k == 0 {
        return Err(format_err("k must be positive"));
    }
    r.read_exact(&mut b8).map_err(truncated)?;
    let num_vertices = u64::from_le_bytes(b8);
    r.read_exact(&mut b8).map_err(truncated)?;
    let m = u64::from_le_bytes(b8);
    let mut assignments = Vec::with_capacity(m as usize);
    let mut loads = vec![0u64; k as usize];
    for _ in 0..m {
        r.read_exact(&mut b4).map_err(truncated)?;
        let p = u32::from_le_bytes(b4);
        if p >= k {
            return Err(format_err(&format!(
                "partition id {p} out of range (k={k})"
            )));
        }
        loads[p as usize] += 1;
        assignments.push(p);
    }
    Ok(Partitioning {
        k,
        num_vertices,
        assignments,
        loads,
    })
}

fn io_err(e: std::io::Error) -> PartitionError {
    PartitionError::Graph(GraphError::Io(e))
}

fn truncated(_: std::io::Error) -> PartitionError {
    PartitionError::Graph(GraphError::Format("partitioning file truncated".into()))
}

fn format_err(msg: &str) -> PartitionError {
    PartitionError::Graph(GraphError::Format(msg.into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("clugp_partition_io");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample() -> Partitioning {
        Partitioning {
            k: 3,
            num_vertices: 10,
            assignments: vec![0, 2, 1, 2, 2],
            loads: vec![1, 1, 3],
        }
    }

    #[test]
    fn round_trip() {
        let path = tmp("rt.part");
        write_partitioning(&path, &sample()).unwrap();
        let back = read_partitioning(&path).unwrap();
        assert_eq!(back.k, 3);
        assert_eq!(back.num_vertices, 10);
        assert_eq!(back.assignments, sample().assignments);
        assert_eq!(back.loads, sample().loads);
        back.validate().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let path = tmp("magic.part");
        std::fs::write(&path, b"NOTMAGIC0000000000000000000000").unwrap();
        assert!(read_partitioning(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_truncation() {
        let path = tmp("trunc.part");
        write_partitioning(&path, &sample()).unwrap();
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 2]).unwrap();
        assert!(read_partitioning(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_out_of_range_partition() {
        let path = tmp("range.part");
        let mut bad = sample();
        bad.k = 2; // assignment "2" is now out of range
        write_partitioning(&path, &bad).unwrap();
        assert!(read_partitioning(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_partitioning_round_trips() {
        let path = tmp("empty.part");
        let p = Partitioning {
            k: 4,
            num_vertices: 0,
            assignments: vec![],
            loads: vec![0; 4],
        };
        write_partitioning(&path, &p).unwrap();
        let back = read_partitioning(&path).unwrap();
        assert!(back.assignments.is_empty());
        std::fs::remove_file(&path).ok();
    }
}
