//! Persisting partitionings: a versioned binary snapshot of an
//! edge→partition assignment so partitioning (expensive, offline) and
//! consumption (the distributed engine, repeatedly) can run in separate
//! processes — the operational split every production deployment needs.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic   [u8; 8] = b"CLUGPPA1"
//! k       u32
//! n       u64     number of vertices
//! m       u64     number of edges
//! a       m × u32 per-edge partition ids (stream order)
//! ```
//!
//! A *placement directory* ([`write_placement_dir`]) pairs that snapshot
//! with the vertex replica table the distributed engine derives from it
//! (`CLUGPRT1`: k, n, then n bitset rows of `ceil(k/64)` u64 words), so
//! consumers can load a placement without re-streaming the graph.

use crate::error::{PartitionError, Result};
use crate::partition::Partitioning;
use crate::state::ReplicaTable;
use clugp_graph::GraphError;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"CLUGPPA1";
const RT_MAGIC: &[u8; 8] = b"CLUGPRT1";

/// File name of the assignment snapshot inside a placement directory.
pub const PLACEMENT_ASSIGNMENTS: &str = "assignments.clugppa";
/// File name of the replica-table snapshot inside a placement directory.
pub const PLACEMENT_REPLICAS: &str = "replicas.clugprt";

/// Writes `partitioning` to `path`.
pub fn write_partitioning(path: &Path, partitioning: &Partitioning) -> Result<()> {
    let file = std::fs::File::create(path).map_err(io_err)?;
    let mut w = BufWriter::new(file);
    w.write_all(MAGIC).map_err(io_err)?;
    w.write_all(&partitioning.k.to_le_bytes()).map_err(io_err)?;
    w.write_all(&partitioning.num_vertices.to_le_bytes())
        .map_err(io_err)?;
    w.write_all(&(partitioning.assignments.len() as u64).to_le_bytes())
        .map_err(io_err)?;
    for &p in &partitioning.assignments {
        w.write_all(&p.to_le_bytes()).map_err(io_err)?;
    }
    w.flush().map_err(io_err)
}

/// Reads a partitioning; recomputes the load vector and validates ids.
pub fn read_partitioning(path: &Path) -> Result<Partitioning> {
    let file = std::fs::File::open(path).map_err(io_err)?;
    let mut r = BufReader::new(file);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic).map_err(truncated)?;
    if &magic != MAGIC {
        return Err(format_err("bad magic bytes"));
    }
    let mut b4 = [0u8; 4];
    let mut b8 = [0u8; 8];
    r.read_exact(&mut b4).map_err(truncated)?;
    let k = u32::from_le_bytes(b4);
    if k == 0 {
        return Err(format_err("k must be positive"));
    }
    r.read_exact(&mut b8).map_err(truncated)?;
    let num_vertices = u64::from_le_bytes(b8);
    r.read_exact(&mut b8).map_err(truncated)?;
    let m = u64::from_le_bytes(b8);
    let mut assignments = Vec::with_capacity(m as usize);
    let mut loads = vec![0u64; k as usize];
    for _ in 0..m {
        r.read_exact(&mut b4).map_err(truncated)?;
        let p = u32::from_le_bytes(b4);
        if p >= k {
            return Err(format_err(&format!(
                "partition id {p} out of range (k={k})"
            )));
        }
        loads[p as usize] += 1;
        assignments.push(p);
    }
    Ok(Partitioning {
        k,
        num_vertices,
        assignments,
        loads,
    })
}

/// Writes a replica-table snapshot (`CLUGPRT1`) to `path`.
pub fn write_replica_table(path: &Path, replicas: &ReplicaTable) -> Result<()> {
    let file = std::fs::File::create(path).map_err(io_err)?;
    let mut w = BufWriter::new(file);
    w.write_all(RT_MAGIC).map_err(io_err)?;
    w.write_all(&replicas.k().to_le_bytes()).map_err(io_err)?;
    w.write_all(&replicas.num_vertices().to_le_bytes())
        .map_err(io_err)?;
    let mut row = vec![0u64; replicas.words_per_row()];
    for v in 0..replicas.num_vertices() {
        replicas.export_row(v as u32, &mut row);
        for word in &row {
            w.write_all(&word.to_le_bytes()).map_err(io_err)?;
        }
    }
    w.flush().map_err(io_err)
}

/// Reads a replica-table snapshot written by [`write_replica_table`].
pub fn read_replica_table(path: &Path) -> Result<ReplicaTable> {
    let file = std::fs::File::open(path).map_err(io_err)?;
    let mut r = BufReader::new(file);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic).map_err(truncated)?;
    if &magic != RT_MAGIC {
        return Err(format_err("bad replica-table magic bytes"));
    }
    let mut b4 = [0u8; 4];
    let mut b8 = [0u8; 8];
    r.read_exact(&mut b4).map_err(truncated)?;
    let k = u32::from_le_bytes(b4);
    if k == 0 {
        return Err(format_err("k must be positive"));
    }
    r.read_exact(&mut b8).map_err(truncated)?;
    let n = u64::from_le_bytes(b8);
    let mut replicas = ReplicaTable::new(n, k)?;
    let words = replicas.words_per_row();
    let mut row = vec![0u64; words];
    for v in 0..n {
        for word in row.iter_mut() {
            r.read_exact(&mut b8).map_err(truncated)?;
            *word = u64::from_le_bytes(b8);
        }
        replicas.import_row(v as u32, &row);
    }
    Ok(replicas)
}

/// Writes a placement directory: the assignment snapshot plus the replica
/// table, under fixed file names (created if `dir` does not exist).
pub fn write_placement_dir(
    dir: &Path,
    partitioning: &Partitioning,
    replicas: &ReplicaTable,
) -> Result<()> {
    std::fs::create_dir_all(dir).map_err(io_err)?;
    write_partitioning(&dir.join(PLACEMENT_ASSIGNMENTS), partitioning)?;
    write_replica_table(&dir.join(PLACEMENT_REPLICAS), replicas)
}

/// Reads a placement directory written by [`write_placement_dir`],
/// checking that the two snapshots agree on `k`.
pub fn read_placement_dir(dir: &Path) -> Result<(Partitioning, ReplicaTable)> {
    let partitioning = read_partitioning(&dir.join(PLACEMENT_ASSIGNMENTS))?;
    let replicas = read_replica_table(&dir.join(PLACEMENT_REPLICAS))?;
    if replicas.k() != partitioning.k {
        return Err(format_err(&format!(
            "placement dir mismatch: assignments have k={}, replicas have k={}",
            partitioning.k,
            replicas.k()
        )));
    }
    Ok((partitioning, replicas))
}

fn io_err(e: std::io::Error) -> PartitionError {
    PartitionError::Graph(GraphError::Io(e))
}

fn truncated(_: std::io::Error) -> PartitionError {
    PartitionError::Graph(GraphError::Format("partitioning file truncated".into()))
}

fn format_err(msg: &str) -> PartitionError {
    PartitionError::Graph(GraphError::Format(msg.into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("clugp_partition_io");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample() -> Partitioning {
        Partitioning {
            k: 3,
            num_vertices: 10,
            assignments: vec![0, 2, 1, 2, 2],
            loads: vec![1, 1, 3],
        }
    }

    #[test]
    fn round_trip() {
        let path = tmp("rt.part");
        write_partitioning(&path, &sample()).unwrap();
        let back = read_partitioning(&path).unwrap();
        assert_eq!(back.k, 3);
        assert_eq!(back.num_vertices, 10);
        assert_eq!(back.assignments, sample().assignments);
        assert_eq!(back.loads, sample().loads);
        back.validate().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let path = tmp("magic.part");
        std::fs::write(&path, b"NOTMAGIC0000000000000000000000").unwrap();
        assert!(read_partitioning(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_truncation() {
        let path = tmp("trunc.part");
        write_partitioning(&path, &sample()).unwrap();
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 2]).unwrap();
        assert!(read_partitioning(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_out_of_range_partition() {
        let path = tmp("range.part");
        let mut bad = sample();
        bad.k = 2; // assignment "2" is now out of range
        write_partitioning(&path, &bad).unwrap();
        assert!(read_partitioning(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn placement_dir_round_trips() {
        let dir = tmp("placement_dir");
        let p = sample();
        let mut replicas = ReplicaTable::new(p.num_vertices, p.k).unwrap();
        replicas.insert(0, 0);
        replicas.insert(0, 2);
        replicas.insert(7, 1);
        write_placement_dir(&dir, &p, &replicas).unwrap();
        let (p2, r2) = read_placement_dir(&dir).unwrap();
        assert_eq!(p2.assignments, p.assignments);
        assert_eq!(r2.num_vertices(), replicas.num_vertices());
        for v in 0..replicas.num_vertices() as u32 {
            assert_eq!(
                r2.partitions_of(v).collect::<Vec<_>>(),
                replicas.partitions_of(v).collect::<Vec<_>>()
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn placement_dir_rejects_k_mismatch() {
        let dir = tmp("placement_dir_bad");
        let p = sample();
        let replicas = ReplicaTable::new(p.num_vertices, p.k + 1).unwrap();
        write_placement_dir(&dir, &p, &replicas).unwrap();
        let err = read_placement_dir(&dir).unwrap_err();
        assert!(err.to_string().contains("mismatch"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_partitioning_round_trips() {
        let path = tmp("empty.part");
        let p = Partitioning {
            k: 4,
            num_vertices: 0,
            assignments: vec![],
            loads: vec![0; 4],
        };
        write_partitioning(&path, &p).unwrap();
        let back = read_partitioning(&path).unwrap();
        assert!(back.assignments.is_empty());
        std::fs::remove_file(&path).ok();
    }
}
