//! Hand-rolled JSON helpers.
//!
//! The workspace's serde stand-in is serialize-only and lives on the other
//! side of the dependency graph, so the exporters build their JSON with a
//! tiny writer ([`Obj`], [`Arr`], [`escape`]) and tests check artifacts
//! with a minimal recursive-descent well-formedness validator
//! ([`validate`]). The validator accepts exactly RFC 8259 JSON; it does
//! not build a value tree, it only walks the text.

/// Escape a string for embedding inside JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Incremental JSON object writer. Fields are emitted in call order.
#[derive(Debug, Default)]
pub struct Obj {
    out: String,
    any: bool,
}

impl Obj {
    /// Start an empty object.
    pub fn new() -> Obj {
        Obj {
            out: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, k: &str) {
        if self.any {
            self.out.push(',');
        }
        self.any = true;
        self.out.push('"');
        self.out.push_str(&escape(k));
        self.out.push_str("\":");
    }

    /// Add an unsigned integer field.
    pub fn u64(mut self, k: &str, v: u64) -> Obj {
        self.key(k);
        self.out.push_str(&v.to_string());
        self
    }

    /// Add a float field (non-finite values are emitted as `null`).
    pub fn f64(mut self, k: &str, v: f64) -> Obj {
        self.key(k);
        if v.is_finite() {
            self.out.push_str(&format!("{v:.6}"));
        } else {
            self.out.push_str("null");
        }
        self
    }

    /// Add a string field.
    pub fn str(mut self, k: &str, v: &str) -> Obj {
        self.key(k);
        self.out.push('"');
        self.out.push_str(&escape(v));
        self.out.push('"');
        self
    }

    /// Add a field whose value is already-serialized JSON.
    pub fn raw(mut self, k: &str, v: &str) -> Obj {
        self.key(k);
        self.out.push_str(v);
        self
    }

    /// Close the object and return its JSON text.
    pub fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

/// Incremental JSON array writer over already-serialized elements.
#[derive(Debug, Default)]
pub struct Arr {
    out: String,
    any: bool,
}

impl Arr {
    /// Start an empty array.
    pub fn new() -> Arr {
        Arr {
            out: String::from("["),
            any: false,
        }
    }

    /// Append an already-serialized JSON element.
    pub fn raw(&mut self, v: &str) {
        if self.any {
            self.out.push(',');
        }
        self.any = true;
        self.out.push_str(v);
    }

    /// Close the array and return its JSON text.
    pub fn finish(mut self) -> String {
        self.out.push(']');
        self.out
    }
}

const MAX_DEPTH: usize = 128;

/// Check that `s` is one well-formed JSON value with nothing trailing.
/// Returns a position-tagged message on the first defect.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut pos = skip_ws(b, 0);
    pos = value(b, pos, 0)?;
    pos = skip_ws(b, pos);
    if pos != b.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], mut pos: usize) -> usize {
    while pos < b.len() && matches!(b[pos], b' ' | b'\t' | b'\n' | b'\r') {
        pos += 1;
    }
    pos
}

fn fail(pos: usize, what: &str) -> String {
    format!("{what} at offset {pos}")
}

fn value(b: &[u8], pos: usize, depth: usize) -> Result<usize, String> {
    if depth > MAX_DEPTH {
        return Err(fail(pos, "nesting too deep"));
    }
    match b.get(pos) {
        None => Err(fail(pos, "unexpected end of input")),
        Some(b'{') => object(b, pos + 1, depth + 1),
        Some(b'[') => array(b, pos + 1, depth + 1),
        Some(b'"') => string(b, pos + 1),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(c) if *c == b'-' || c.is_ascii_digit() => number(b, pos),
        Some(_) => Err(fail(pos, "unexpected byte")),
    }
}

fn literal(b: &[u8], pos: usize, lit: &[u8]) -> Result<usize, String> {
    if b.len() >= pos + lit.len() && &b[pos..pos + lit.len()] == lit {
        Ok(pos + lit.len())
    } else {
        Err(fail(pos, "bad literal"))
    }
}

fn string(b: &[u8], mut pos: usize) -> Result<usize, String> {
    // `pos` is just past the opening quote.
    while pos < b.len() {
        match b[pos] {
            b'"' => return Ok(pos + 1),
            b'\\' => {
                pos += 1;
                match b.get(pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => pos += 1,
                    Some(b'u') => {
                        if b.len() < pos + 5
                            || !b[pos + 1..pos + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(fail(pos, "bad unicode escape"));
                        }
                        pos += 5;
                    }
                    _ => return Err(fail(pos, "bad escape")),
                }
            }
            c if c < 0x20 => return Err(fail(pos, "raw control character in string")),
            _ => pos += 1,
        }
    }
    Err(fail(pos, "unterminated string"))
}

fn number(b: &[u8], mut pos: usize) -> Result<usize, String> {
    let start = pos;
    if b.get(pos) == Some(&b'-') {
        pos += 1;
    }
    match b.get(pos) {
        Some(b'0') => pos += 1,
        Some(c) if c.is_ascii_digit() => {
            while pos < b.len() && b[pos].is_ascii_digit() {
                pos += 1;
            }
        }
        _ => return Err(fail(start, "bad number")),
    }
    if b.get(pos) == Some(&b'.') {
        pos += 1;
        if !b.get(pos).is_some_and(u8::is_ascii_digit) {
            return Err(fail(pos, "bad fraction"));
        }
        while pos < b.len() && b[pos].is_ascii_digit() {
            pos += 1;
        }
    }
    if matches!(b.get(pos), Some(b'e' | b'E')) {
        pos += 1;
        if matches!(b.get(pos), Some(b'+' | b'-')) {
            pos += 1;
        }
        if !b.get(pos).is_some_and(u8::is_ascii_digit) {
            return Err(fail(pos, "bad exponent"));
        }
        while pos < b.len() && b[pos].is_ascii_digit() {
            pos += 1;
        }
    }
    Ok(pos)
}

fn object(b: &[u8], mut pos: usize, depth: usize) -> Result<usize, String> {
    pos = skip_ws(b, pos);
    if b.get(pos) == Some(&b'}') {
        return Ok(pos + 1);
    }
    loop {
        pos = skip_ws(b, pos);
        if b.get(pos) != Some(&b'"') {
            return Err(fail(pos, "expected object key"));
        }
        pos = string(b, pos + 1)?;
        pos = skip_ws(b, pos);
        if b.get(pos) != Some(&b':') {
            return Err(fail(pos, "expected ':'"));
        }
        pos = skip_ws(b, pos + 1);
        pos = value(b, pos, depth)?;
        pos = skip_ws(b, pos);
        match b.get(pos) {
            Some(b',') => pos += 1,
            Some(b'}') => return Ok(pos + 1),
            _ => return Err(fail(pos, "expected ',' or '}'")),
        }
    }
}

fn array(b: &[u8], mut pos: usize, depth: usize) -> Result<usize, String> {
    pos = skip_ws(b, pos);
    if b.get(pos) == Some(&b']') {
        return Ok(pos + 1);
    }
    loop {
        pos = skip_ws(b, pos);
        pos = value(b, pos, depth)?;
        pos = skip_ws(b, pos);
        match b.get(pos) {
            Some(b',') => pos += 1,
            Some(b']') => return Ok(pos + 1),
            _ => return Err(fail(pos, "expected ',' or ']'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn obj_and_arr_build_valid_json() {
        let mut arr = Arr::new();
        arr.raw("1");
        arr.raw("\"two\"");
        let json = Obj::new()
            .u64("n", 7)
            .f64("x", 1.5)
            .str("s", "he said \"hi\"")
            .raw("list", &arr.finish())
            .finish();
        validate(&json).unwrap();
        assert!(json.starts_with("{\"n\":7,"));
    }

    #[test]
    fn validator_accepts_and_rejects() {
        for good in [
            "{}",
            "[]",
            "null",
            "-1.5e+3",
            "  {\"a\": [1, 2, {\"b\": \"c\\u00e9\"}], \"d\": false}  ",
        ] {
            validate(good).unwrap_or_else(|e| panic!("{good}: {e}"));
        }
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\":1} x",
            "\"unterminated",
            "01",
            "1.",
            "nul",
            "{\"a\":\"\u{1}\"}",
        ] {
            assert!(validate(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn validator_bounds_depth() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(validate(&deep).is_err());
        let ok = "[".repeat(64) + &"]".repeat(64);
        validate(&ok).unwrap();
    }
}
