//! Decode prefetch-stall accounting.
//!
//! The pipelined pack decoder hands blocks to its consumer through a
//! condvar; whenever the consumer arrives before the decode threads have
//! the next block ready, it blocks. That wait always happens *on the
//! consumer's own thread* — in AMPC runs, the worker serve loop — so a
//! thread-local accumulator attributes stall time exactly, in both
//! in-process (thread-per-worker) and multi-process (process-per-worker)
//! topologies. A process-wide atomic mirror feeds single-actor consumers
//! like `clugp-pack` that never sample per thread.
//!
//! Recording is unconditional but nearly free (one TLS add + two relaxed
//! atomic adds per *stall*, not per block); stalls are rare on healthy
//! runs and the cost is dwarfed by the wait itself.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

thread_local! {
    static THREAD_STALL_NS: Cell<u64> = const { Cell::new(0) };
}

static PROCESS_STALL_NS: AtomicU64 = AtomicU64::new(0);
static PROCESS_STALLS: AtomicU64 = AtomicU64::new(0);

/// Charge `ns` nanoseconds of decode stall to the calling thread and to the
/// process-wide totals.
pub fn add_decode_stall(ns: u64) {
    THREAD_STALL_NS.with(|c| c.set(c.get().saturating_add(ns)));
    PROCESS_STALL_NS.fetch_add(ns, Ordering::Relaxed);
    PROCESS_STALLS.fetch_add(1, Ordering::Relaxed);
}

/// Take and reset the calling thread's accumulated stall nanoseconds.
/// Actors call this at region boundaries to get per-stage attribution.
pub fn take_thread_ns() -> u64 {
    THREAD_STALL_NS.with(|c| c.replace(0))
}

/// Total decode-stall nanoseconds recorded by this process.
pub fn process_ns() -> u64 {
    PROCESS_STALL_NS.load(Ordering::Relaxed)
}

/// Number of individual stalls recorded by this process.
pub fn process_stalls() -> u64 {
    PROCESS_STALLS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_local_attribution() {
        assert_eq!(take_thread_ns(), 0);
        add_decode_stall(1_500);
        add_decode_stall(500);
        // The other thread's stalls must not leak into this thread's tally.
        std::thread::spawn(|| {
            add_decode_stall(9_999);
            assert_eq!(take_thread_ns(), 9_999);
        })
        .join()
        .unwrap();
        assert_eq!(take_thread_ns(), 2_000);
        assert_eq!(take_thread_ns(), 0);
        assert!(process_ns() >= 11_999);
        assert!(process_stalls() >= 3);
    }
}
