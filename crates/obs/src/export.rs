//! Exporters: Chrome trace-event JSON and a human summary table.

use crate::json::{escape, Arr, Obj};
use crate::{EventKind, TraceRecord};

fn lane_label(lane: u32) -> String {
    if lane == crate::LANE_COORDINATOR {
        "coordinator".to_string()
    } else {
        format!("worker {}", lane - 1)
    }
}

/// Render a merged record as Chrome trace-event JSON (the "JSON Array
/// Format" object flavour), loadable in Perfetto and `chrome://tracing`.
///
/// Each lane becomes one process: pid 0 is the coordinator, pid `w+1` is
/// worker `w`. `process_name` metadata is emitted for the coordinator and
/// for all `workers` workers even if a lane recorded nothing, so the
/// viewer always shows the full topology. Spans become `"X"` complete
/// events, instants become process-scoped `"i"` events; the per-event
/// counter surfaces as `args.v`.
///
/// `metrics` — when given — is embedded verbatim as a top-level
/// `"clugpMetrics"` key; trace viewers ignore unknown top-level keys, so
/// one artifact carries both the timeline and the metrics snapshot.
pub fn chrome_trace(rec: &TraceRecord, workers: u32, metrics: Option<&str>) -> String {
    let mut events = Arr::new();
    for lane in 0..=workers {
        events.raw(
            &Obj::new()
                .str("ph", "M")
                .str("name", "process_name")
                .u64("pid", lane as u64)
                .u64("tid", 0)
                .raw("args", &Obj::new().str("name", &lane_label(lane)).finish())
                .finish(),
        );
        events.raw(
            &Obj::new()
                .str("ph", "M")
                .str("name", "process_sort_index")
                .u64("pid", lane as u64)
                .u64("tid", 0)
                .raw("args", &Obj::new().u64("sort_index", lane as u64).finish())
                .finish(),
        );
    }
    let mut sorted: Vec<&(u32, crate::Event)> = rec.events.iter().collect();
    sorted.sort_by_key(|(lane, e)| (*lane, e.ts_us));
    for (lane, e) in sorted {
        let mut obj = Obj::new()
            .str("name", &e.name)
            .str("cat", "clugp")
            .u64("pid", *lane as u64)
            .u64("tid", 0)
            .u64("ts", e.ts_us);
        obj = match e.kind {
            EventKind::Span => obj.str("ph", "X").u64("dur", e.dur_us),
            EventKind::Instant => obj.str("ph", "i").str("s", "p"),
        };
        events.raw(
            &obj.raw("args", &Obj::new().u64("v", e.arg).finish())
                .finish(),
        );
    }
    let mut top = Obj::new()
        .raw("traceEvents", &events.finish())
        .str("displayTimeUnit", "ms")
        .u64("clugpDroppedEvents", rec.dropped);
    if let Some(m) = metrics {
        top = top.raw("clugpMetrics", m);
    }
    top.finish()
}

/// Aggregate the record per `(lane, event name)` and render an aligned
/// table for stderr: event count, total span milliseconds, and the summed
/// per-event counter.
pub fn summary_table(rec: &TraceRecord) -> String {
    struct Row {
        lane: u32,
        name: String,
        kind: EventKind,
        count: u64,
        total_us: u64,
        arg_sum: u64,
    }
    let mut rows: Vec<Row> = Vec::new();
    for (lane, e) in &rec.events {
        match rows
            .iter_mut()
            .find(|r| r.lane == *lane && r.name == e.name && r.kind == e.kind)
        {
            Some(r) => {
                r.count += 1;
                r.total_us += e.dur_us;
                r.arg_sum = r.arg_sum.saturating_add(e.arg);
            }
            None => rows.push(Row {
                lane: *lane,
                name: e.name.clone(),
                kind: e.kind,
                count: 1,
                total_us: e.dur_us,
                arg_sum: e.arg,
            }),
        }
    }
    rows.sort_by(|a, b| (a.lane, &a.name).cmp(&(b.lane, &b.name)));
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:<22} {:<7} {:>7} {:>12} {:>14}\n",
        "lane", "event", "kind", "count", "total ms", "arg sum"
    ));
    for r in &rows {
        let kind = match r.kind {
            EventKind::Span => "span",
            EventKind::Instant => "inst",
        };
        out.push_str(&format!(
            "{:<12} {:<22} {:<7} {:>7} {:>12.3} {:>14}\n",
            lane_label(r.lane),
            r.name,
            kind,
            r.count,
            r.total_us as f64 / 1e3,
            r.arg_sum
        ));
    }
    if rec.dropped > 0 {
        out.push_str(&format!(
            "(dropped {} events at buffer caps)\n",
            rec.dropped
        ));
    }
    out
}

/// Escape helper re-exported for exporter callers building adjacent JSON.
pub fn json_escape(s: &str) -> String {
    escape(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{json, Event, LANE_COORDINATOR};

    fn sample() -> TraceRecord {
        let mut rec = TraceRecord::default();
        rec.push(
            LANE_COORDINATOR,
            Event {
                name: "pass:pass1".into(),
                kind: EventKind::Span,
                ts_us: 10,
                dur_us: 500,
                arg: 0,
            },
        );
        rec.push(
            crate::worker_lane(1),
            Event {
                name: "chunk".into(),
                kind: EventKind::Span,
                ts_us: 20,
                dur_us: 30,
                arg: 4096,
            },
        );
        rec.push(crate::worker_lane(1), Event::instant_now("retry", 2));
        rec
    }

    #[test]
    fn chrome_trace_is_valid_json_with_all_lanes() {
        let rec = sample();
        let metrics = Obj::new().u64("recoveries", 1).finish();
        let out = chrome_trace(&rec, 4, Some(&metrics));
        json::validate(&out).unwrap();
        // Coordinator + 4 worker lanes announced even though only two
        // lanes recorded events.
        for label in [
            "coordinator",
            "worker 0",
            "worker 1",
            "worker 2",
            "worker 3",
        ] {
            assert!(out.contains(&format!("\"name\":\"{label}\"")), "{label}");
        }
        assert!(out.contains("\"ph\":\"X\""));
        assert!(out.contains("\"ph\":\"i\""));
        assert!(out.contains("\"clugpMetrics\":{\"recoveries\":1}"));
    }

    #[test]
    fn summary_table_aggregates_per_lane() {
        let mut rec = sample();
        rec.push(
            crate::worker_lane(1),
            Event {
                name: "chunk".into(),
                kind: EventKind::Span,
                ts_us: 60,
                dur_us: 40,
                arg: 1000,
            },
        );
        let table = summary_table(&rec);
        let chunk_line = table
            .lines()
            .find(|l| l.contains("chunk"))
            .expect("chunk row");
        assert!(chunk_line.contains("worker 1"));
        assert!(chunk_line.contains("2"), "count aggregated: {chunk_line}");
        assert!(chunk_line.contains("5096"), "arg summed: {chunk_line}");
    }
}
