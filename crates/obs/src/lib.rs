//! Lock-light observability substrate for the CLUGP engines (DESIGN.md §12).
//!
//! Zero-dependency by design: the recorder has to be embeddable in every
//! crate of the workspace — the graph substrate's decode pipeline, the
//! AMPC coordinator/worker pair, the GAS engine, and both CLIs — without
//! dragging the dependency graph sideways. Everything here is plain
//! `std`: monotonic timestamps from a process-global [`std::time::Instant`]
//! epoch, an [`AtomicBool`] master switch, owned per-actor event buffers
//! ([`EventBuf`]), a mutex-guarded process sink for code that has no actor
//! to hang a buffer off (CLIs, the engine runtime), and a thread-local
//! decode-stall accumulator ([`stall`]) that attributes blocking time in
//! the pipelined pack decoder to the consumer thread that suffered it.
//!
//! The wire encoding of events is *not* defined here — the AMPC protocol
//! crate owns its codec and ships [`Event`]s as a `TraceEvents` verb using
//! the same varint idioms as the rest of the protocol. This crate only
//! defines the in-memory model and the exporters:
//!
//! * [`export::chrome_trace`] — Chrome trace-event JSON (loads in
//!   Perfetto / `chrome://tracing`), one process lane per worker plus a
//!   coordinator lane, with an optional embedded metrics snapshot under a
//!   `"clugpMetrics"` key that trace viewers ignore.
//! * [`export::summary_table`] — a human-readable per-lane aggregation
//!   for `--trace-summary` on stderr.
//!
//! Recording is compiled in but off by default; every instrumentation
//! site is gated either on [`enabled`] or on a per-run flag carried in
//! the AMPC `Configure` handshake, so the untraced hot path pays one
//! relaxed atomic load (or a plain bool test) and nothing else.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

pub mod export;
pub mod json;
pub mod stall;

/// Lane id of the coordinator in a merged trace record.
pub const LANE_COORDINATOR: u32 = 0;

/// Lane id of worker `w` in a merged trace record (workers are shifted by
/// one so the coordinator can keep lane 0).
pub fn worker_lane(w: u32) -> u32 {
    w + 1
}

/// Hard cap on events buffered by a single recorder. Tracing a pathological
/// run must degrade to dropped events, never to unbounded memory; drops are
/// counted and surfaced in the metrics snapshot.
pub const EVENT_CAP: usize = 1 << 20;

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds elapsed since the process-global monotonic epoch (the first
/// call to any timestamping function in this crate). Lanes recorded in
/// different processes are re-based by the coordinator when their frames
/// arrive, using the `now_us` the sender stamps into each frame.
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn the process-wide recorder switch on or off. This gates only the
/// *ambient* instrumentation (the global sink and the decode-stall
/// accounting); AMPC actors carry an explicit per-run flag instead so a
/// traced run and an untraced run can coexist in one process.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether ambient recording is on. One relaxed load; callers on hot paths
/// should read it once per region, not per event.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// What an [`Event`] marks: a closed interval or a point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A completed interval: `ts_us .. ts_us + dur_us`.
    Span,
    /// A point-in-time marker; `dur_us` is zero.
    Instant,
}

impl EventKind {
    /// Stable wire tag for this kind.
    pub fn tag(self) -> u8 {
        match self {
            EventKind::Span => 0,
            EventKind::Instant => 1,
        }
    }

    /// Inverse of [`EventKind::tag`].
    pub fn from_tag(tag: u8) -> Option<EventKind> {
        match tag {
            0 => Some(EventKind::Span),
            1 => Some(EventKind::Instant),
            _ => None,
        }
    }
}

/// One recorded event. `arg` is a single free-form counter whose meaning is
/// event-name specific (edges in a chunk, keys in a route batch, stall
/// microseconds, ...); it surfaces as `args.v` in the Chrome export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Event name; spans with the same name aggregate in the summary table.
    pub name: String,
    /// Span or instant.
    pub kind: EventKind,
    /// Start timestamp, microseconds on the recording process's clock
    /// (re-based to the coordinator clock when merged).
    pub ts_us: u64,
    /// Duration in microseconds; zero for instants.
    pub dur_us: u64,
    /// Free-form per-event counter.
    pub arg: u64,
}

impl Event {
    /// A completed span starting at `start_us` and ending now.
    pub fn span_since(name: &str, start_us: u64, arg: u64) -> Event {
        Event {
            name: name.to_string(),
            kind: EventKind::Span,
            ts_us: start_us,
            dur_us: now_us().saturating_sub(start_us),
            arg,
        }
    }

    /// A point event stamped now.
    pub fn instant_now(name: &str, arg: u64) -> Event {
        Event {
            name: name.to_string(),
            kind: EventKind::Instant,
            ts_us: now_us(),
            dur_us: 0,
            arg,
        }
    }
}

/// An owned, bounded event buffer for a single-threaded actor (one AMPC
/// worker serve loop, the coordinator). No locking: the actor owns it and
/// drains it at its own barriers.
#[derive(Debug, Default)]
pub struct EventBuf {
    events: Vec<Event>,
    dropped: u64,
}

impl EventBuf {
    /// An empty buffer.
    pub fn new() -> EventBuf {
        EventBuf::default()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the buffer holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events discarded so far because the buffer hit [`EVENT_CAP`].
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Append an event, counting a drop instead of growing past the cap.
    pub fn push(&mut self, ev: Event) {
        if self.events.len() >= EVENT_CAP {
            self.dropped += 1;
        } else {
            self.events.push(ev);
        }
    }

    /// Record a span that started at `start_us` and ends now.
    pub fn span(&mut self, name: &str, start_us: u64, arg: u64) {
        self.push(Event::span_since(name, start_us, arg));
    }

    /// Record a point event stamped now.
    pub fn instant(&mut self, name: &str, arg: u64) {
        self.push(Event::instant_now(name, arg));
    }

    /// Take all buffered events, leaving the buffer empty (drop count is
    /// preserved; use [`EventBuf::take_dropped`] to reset it).
    pub fn drain(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.events)
    }

    /// Take and reset the drop counter.
    pub fn take_dropped(&mut self) -> u64 {
        std::mem::take(&mut self.dropped)
    }
}

fn sink() -> &'static Mutex<EventBuf> {
    static SINK: OnceLock<Mutex<EventBuf>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(EventBuf::new()))
}

/// Record a completed span into the process sink if ambient recording is on.
pub fn record_span(name: &str, start_us: u64, arg: u64) {
    if enabled() {
        sink().lock().unwrap().span(name, start_us, arg);
    }
}

/// Record a point event into the process sink if ambient recording is on.
pub fn record_instant(name: &str, arg: u64) {
    if enabled() {
        sink().lock().unwrap().instant(name, arg);
    }
}

/// Drain the process sink: all buffered events plus the drop count.
pub fn take_events() -> (Vec<Event>, u64) {
    let mut buf = sink().lock().unwrap();
    let events = buf.drain();
    let dropped = buf.take_dropped();
    (events, dropped)
}

/// A merged, lane-tagged record of one run: coordinator events on lane
/// [`LANE_COORDINATOR`], worker `w` on [`worker_lane`]`(w)`.
#[derive(Debug, Clone, Default)]
pub struct TraceRecord {
    /// `(lane, event)` pairs in arrival order.
    pub events: Vec<(u32, Event)>,
    /// Events lost to buffer caps anywhere in the run.
    pub dropped: u64,
}

impl TraceRecord {
    /// Append an event to a lane, honouring the global cap.
    pub fn push(&mut self, lane: u32, ev: Event) {
        if self.events.len() >= EVENT_CAP {
            self.dropped += 1;
        } else {
            self.events.push((lane, ev));
        }
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total microseconds spent in spans named `name`, across all lanes.
    pub fn span_total_us(&self, name: &str) -> u64 {
        self.events
            .iter()
            .filter(|(_, e)| e.kind == EventKind::Span && e.name == name)
            .map(|(_, e)| e.dur_us)
            .sum()
    }

    /// Number of events named `name`, across all lanes.
    pub fn count(&self, name: &str) -> usize {
        self.events.iter().filter(|(_, e)| e.name == name).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let a = now_us();
        let b = now_us();
        assert!(b >= a);
    }

    #[test]
    fn event_kind_tags_round_trip() {
        for kind in [EventKind::Span, EventKind::Instant] {
            assert_eq!(EventKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(EventKind::from_tag(7), None);
    }

    #[test]
    fn event_buf_records_and_drains() {
        let mut buf = EventBuf::new();
        let t0 = now_us();
        buf.span("stage", t0, 42);
        buf.instant("marker", 7);
        assert_eq!(buf.len(), 2);
        let events = buf.drain();
        assert!(buf.is_empty());
        assert_eq!(events[0].name, "stage");
        assert_eq!(events[0].kind, EventKind::Span);
        assert_eq!(events[0].arg, 42);
        assert_eq!(events[1].kind, EventKind::Instant);
        assert_eq!(events[1].dur_us, 0);
    }

    #[test]
    fn event_buf_caps_and_counts_drops() {
        let mut buf = EventBuf::new();
        for _ in 0..EVENT_CAP + 3 {
            buf.push(Event::instant_now("x", 0));
        }
        assert_eq!(buf.len(), EVENT_CAP);
        assert_eq!(buf.take_dropped(), 3);
        assert_eq!(buf.dropped(), 0);
    }

    #[test]
    fn ambient_sink_respects_switch() {
        // The sink is process-global; drain whatever other tests left.
        let _ = take_events();
        set_enabled(false);
        record_instant("off", 1);
        assert!(take_events().0.is_empty());
        set_enabled(true);
        record_span("on", now_us(), 2);
        set_enabled(false);
        let (events, dropped) = take_events();
        assert_eq!(dropped, 0);
        assert!(events.iter().any(|e| e.name == "on"));
    }

    #[test]
    fn trace_record_aggregates() {
        let mut rec = TraceRecord::default();
        rec.push(
            LANE_COORDINATOR,
            Event {
                name: "pass:pass1".into(),
                kind: EventKind::Span,
                ts_us: 0,
                dur_us: 100,
                arg: 0,
            },
        );
        rec.push(worker_lane(0), Event::instant_now("retry", 1));
        assert_eq!(rec.span_total_us("pass:pass1"), 100);
        assert_eq!(rec.count("retry"), 1);
        assert_eq!(rec.count("missing"), 0);
    }
}
