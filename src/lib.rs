//! Reproduction root crate for *Clustering-based Partitioning for Large Web
//! Graphs* (ICDE 2022).
//!
//! This crate only hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`); the implementation lives in:
//!
//! * [`clugp_graph`] — graph substrate (CSR, streams, generators, I/O).
//! * [`clugp`] — the CLUGP partitioner and all baselines.
//! * [`clugp_engine`] — the PowerGraph-style GAS execution simulator.
//!
//! See README.md for the repository map and EXPERIMENTS.md for
//! paper-vs-measured results.

pub use clugp;
pub use clugp_engine;
pub use clugp_graph;

/// Convenience used by the integration tests: a deterministic mid-sized web
/// graph in BFS stream order.
pub fn test_web_graph(vertices: u64, seed: u64) -> (u64, Vec<clugp_graph::types::Edge>) {
    use clugp_graph::gen::{generate_web_crawl, WebCrawlConfig};
    use clugp_graph::order::{ordered_edges, StreamOrder};
    let g = generate_web_crawl(&WebCrawlConfig {
        vertices,
        seed,
        ..Default::default()
    });
    (g.num_vertices(), ordered_edges(&g, StreamOrder::Bfs))
}
