//! Reproduction root crate for *Clustering-based Partitioning for Large Web
//! Graphs* (ICDE 2022).
//!
//! This crate only hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`); the implementation lives in:
//!
//! * [`clugp_graph`] — graph substrate (CSR, streams, generators, I/O).
//! * [`clugp`] — the CLUGP partitioner and all baselines.
//! * [`clugp_engine`] — the PowerGraph-style GAS execution simulator.
//!
//! See README.md for the repository map and EXPERIMENTS.md for
//! paper-vs-measured results.

pub use clugp;
pub use clugp_engine;
pub use clugp_graph;

/// Convenience used by the integration tests: a deterministic mid-sized web
/// graph in BFS stream order.
pub fn test_web_graph(vertices: u64, seed: u64) -> (u64, Vec<clugp_graph::types::Edge>) {
    use clugp_graph::gen::{generate_web_crawl, WebCrawlConfig};
    use clugp_graph::order::{ordered_edges, StreamOrder};
    let g = generate_web_crawl(&WebCrawlConfig {
        vertices,
        seed,
        ..Default::default()
    });
    (g.num_vertices(), ordered_edges(&g, StreamOrder::Bfs))
}

#[cfg(test)]
mod tests {
    use super::test_web_graph;
    use std::collections::HashSet;

    #[test]
    fn fixture_is_deterministic_per_seed() {
        let (n1, e1) = test_web_graph(800, 7);
        let (n2, e2) = test_web_graph(800, 7);
        assert_eq!(n1, n2);
        assert_eq!(e1, e2, "same (vertices, seed) must give identical streams");
    }

    #[test]
    fn fixture_varies_across_seeds() {
        let (_, a) = test_web_graph(800, 1);
        let (_, b) = test_web_graph(800, 2);
        assert_ne!(a, b, "different seeds should give different streams");
    }

    #[test]
    fn endpoints_are_in_range_and_stream_is_nonempty() {
        let (n, edges) = test_web_graph(500, 3);
        assert!(!edges.is_empty());
        assert!(edges
            .iter()
            .all(|e| u64::from(e.src) < n && u64::from(e.dst) < n));
    }

    /// BFS streams emit each vertex's whole out-burst contiguously: a source
    /// id never reappears after its burst ended.
    #[test]
    fn bfs_stream_has_contiguous_source_bursts() {
        let (_, edges) = test_web_graph(600, 11);
        let mut finished: HashSet<u32> = HashSet::new();
        let mut current = None;
        for e in &edges {
            if current != Some(e.src) {
                if let Some(prev) = current {
                    finished.insert(prev);
                }
                assert!(
                    !finished.contains(&e.src),
                    "source {} restarted a burst — not a BFS emission order",
                    e.src
                );
                current = Some(e.src);
            }
        }
    }

    /// BFS discovery order: when a burst starts for a vertex never seen
    /// before in the stream, it must be a fresh BFS root, and roots are
    /// taken in increasing id order.
    #[test]
    fn bfs_stream_discovers_before_expanding() {
        let (_, edges) = test_web_graph(600, 5);
        let mut seen: HashSet<u32> = HashSet::new();
        let mut last_root: Option<u32> = None;
        let mut current = None;
        for e in &edges {
            if current != Some(e.src) {
                current = Some(e.src);
                if !seen.contains(&e.src) {
                    // Unreached source ⇒ a new BFS root; root ids ascend.
                    if let Some(r) = last_root {
                        assert!(
                            e.src > r,
                            "root {} started after root {r}; roots must ascend",
                            e.src
                        );
                    }
                    last_root = Some(e.src);
                }
            }
            seen.insert(e.src);
            seen.insert(e.dst);
        }
    }
}
